"""Tests for the FairnessThresholds (Δ) model."""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidateTable
from repro.exceptions import ValidationError
from repro.fairness.thresholds import FairnessThresholds


class TestConstruction:
    def test_scalar_threshold(self):
        thresholds = FairnessThresholds(0.1)
        assert thresholds.default == 0.1
        assert thresholds.threshold_for("anything") == 0.1

    def test_per_entity_overrides(self):
        thresholds = FairnessThresholds(0.2, {"Race": 0.05})
        assert thresholds.threshold_for("Race") == 0.05
        assert thresholds.threshold_for("Gender") == 0.2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            FairnessThresholds(1.5)
        with pytest.raises(ValidationError):
            FairnessThresholds(-0.1)
        with pytest.raises(ValidationError):
            FairnessThresholds(0.1, {"Race": 2.0})

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            FairnessThresholds("strict")  # type: ignore[arg-type]

    def test_strictest(self):
        thresholds = FairnessThresholds(0.3, {"Race": 0.05, "Gender": 0.4})
        assert thresholds.strictest() == 0.05

    def test_equality_and_hash(self):
        assert FairnessThresholds(0.1, {"Race": 0.05}) == FairnessThresholds(
            0.1, {"Race": 0.05}
        )
        assert FairnessThresholds(0.1) != FairnessThresholds(0.2)
        assert hash(FairnessThresholds(0.1)) == hash(FairnessThresholds(0.1))

    def test_repr(self):
        assert "0.1" in repr(FairnessThresholds(0.1))
        assert "Race" in repr(FairnessThresholds(0.1, {"Race": 0.05}))


class TestCoercion:
    def test_coerce_scalar(self):
        assert FairnessThresholds.coerce(0.25).default == 0.25

    def test_coerce_mapping_with_default(self):
        thresholds = FairnessThresholds.coerce({"default": 0.2, "Race": 0.05})
        assert thresholds.default == 0.2
        assert thresholds.threshold_for("Race") == 0.05

    def test_coerce_mapping_without_default_is_permissive(self):
        thresholds = FairnessThresholds.coerce({"Race": 0.05})
        assert thresholds.default == 1.0

    def test_coerce_passthrough(self):
        original = FairnessThresholds(0.1)
        assert FairnessThresholds.coerce(original) is original


class TestTableIntegration:
    def test_as_mapping_covers_all_entities(self, tiny_table):
        thresholds = FairnessThresholds(0.1, {"Race": 0.05})
        mapping = thresholds.as_mapping(tiny_table)
        assert mapping == {
            "Gender": 0.1,
            "Race": 0.05,
            CandidateTable.INTERSECTION: 0.1,
        }

    def test_per_entity_copy_is_detached(self):
        thresholds = FairnessThresholds(0.1, {"Race": 0.05})
        mapping = thresholds.per_entity
        mapping["Race"] = 0.9
        assert thresholds.threshold_for("Race") == 0.05
