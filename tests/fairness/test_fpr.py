"""Tests for the Favored Pair Representation (FPR) score (Definition 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.exceptions import FairnessError
from repro.fairness.fpr import PARITY_TARGET, fpr, fpr_by_group, fpr_of_members, fpr_table, fpr_vector


class TestFprBasics:
    def test_group_entirely_at_top_scores_one(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])  # all men first
        men = tiny_table.group("Gender", "Man")
        assert fpr(ranking, men) == 1.0

    def test_group_entirely_at_bottom_scores_zero(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        women = tiny_table.group("Gender", "Woman")
        assert fpr(ranking, women) == 0.0

    def test_perfectly_alternating_groups_score_near_half(self):
        table = CandidateTable({"Gender": ["M", "F"] * 4})
        ranking = Ranking(list(range(8)))  # alternates M, F, M, F ...
        scores = fpr_by_group(ranking, table, "Gender")
        # Alternating placement is as close to parity as a strict order allows.
        assert scores["Gender=M"] == pytest.approx(0.625)
        assert scores["Gender=F"] == pytest.approx(0.375)

    def test_parity_target_constant(self):
        assert PARITY_TARGET == 0.5

    def test_fpr_range_is_unit_interval(self, tiny_table):
        for seed in range(5):
            ranking = Ranking.random(6, np.random.default_rng(seed))
            for attribute in tiny_table.all_fairness_entities():
                for score in fpr_by_group(ranking, tiny_table, attribute).values():
                    assert 0.0 <= score <= 1.0

    def test_whole_universe_group_rejected(self):
        ranking = Ranking([0, 1, 2])
        with pytest.raises(FairnessError):
            fpr_of_members(ranking, [0, 1, 2])

    def test_empty_group_rejected(self):
        ranking = Ranking([0, 1, 2])
        with pytest.raises(FairnessError):
            fpr_of_members(ranking, [])

    def test_mismatched_table_and_ranking(self, tiny_table):
        with pytest.raises(FairnessError):
            fpr_by_group(Ranking([0, 1]), tiny_table, "Gender")

    def test_single_group_attribute_rejected(self):
        table = CandidateTable(
            {"Gender": ["M", "M", "M"]}, domains={"Gender": ("M", "F")}
        )
        ranking = Ranking([0, 1, 2])
        with pytest.raises(FairnessError):
            fpr_by_group(ranking, table, "Gender")


class TestFprComputation:
    def test_sizes_do_not_distort_parity_interpretation(self):
        """A small and a large group placed 'proportionally' both score ~0.5."""
        table = CandidateTable({"X": ["a", "b", "b", "b", "a", "b", "b", "b"]})
        # Place the two 'a' members at positions 1 and 5 (0-based 0 and 4):
        ranking = Ranking([0, 1, 2, 3, 4, 5, 6, 7])
        scores = fpr_by_group(ranking, table, "X")
        assert scores["X=a"] == pytest.approx(0.75)
        assert scores["X=b"] == pytest.approx(0.25)

    def test_fpr_vector_matches_by_group(self, tiny_table):
        ranking = Ranking([4, 2, 0, 5, 1, 3])
        vector = fpr_vector(ranking, tiny_table, "Race")
        mapping = fpr_by_group(ranking, tiny_table, "Race")
        groups = tiny_table.groups("Race")
        for index, group in enumerate(groups):
            assert vector[index] == pytest.approx(mapping[group.label])

    def test_fpr_table_covers_all_entities(self, tiny_table):
        ranking = Ranking([0, 1, 2, 3, 4, 5])
        table = fpr_table(ranking, tiny_table)
        assert set(table) == {"Gender", "Race", CandidateTable.INTERSECTION}

    def test_intersection_group_scores(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        scores = fpr_by_group(ranking, tiny_table, CandidateTable.INTERSECTION)
        assert len(scores) == 4

    def test_reversing_ranking_reflects_fpr_around_half(self, tiny_table):
        ranking = Ranking([4, 2, 0, 5, 1, 3])
        for attribute in ("Gender", "Race"):
            forward = fpr_vector(ranking, tiny_table, attribute)
            backward = fpr_vector(ranking.reversed(), tiny_table, attribute)
            assert np.allclose(forward + backward, 1.0)

    @given(st.permutations(list(range(6))))
    @settings(max_examples=60, deadline=None)
    def test_group_size_weighted_fpr_sums_to_half_for_binary_partition(self, order):
        """For a 2-group partition the mixed pairs split between the groups."""
        table = CandidateTable({"X": ["a", "a", "a", "b", "b", "b"]})
        ranking = Ranking(list(order))
        scores = fpr_vector(ranking, table, "X")
        # With equal group sizes (same denominator), FPR_a + FPR_b = 1.
        assert scores.sum() == pytest.approx(1.0)
