"""Tests for the FairnessTable report (Table IV/V layout)."""

from __future__ import annotations

import pytest

from repro.core.ranking import Ranking
from repro.fairness.report import FairnessTable, fairness_row, format_float


class TestFairnessRow:
    def test_row_contains_groups_attributes_and_irp(self, tiny_table):
        row = fairness_row(Ranking([0, 1, 2, 3, 4, 5]), tiny_table)
        assert "Gender=Man" in row
        assert "Race=B" in row
        assert "Gender" in row
        assert "IRP" in row

    def test_row_values_consistent_with_parity(self, tiny_table, biased_ranking_for_tiny_table):
        row = fairness_row(biased_ranking_for_tiny_table, tiny_table)
        assert row["Gender"] == pytest.approx(1.0)
        assert row["Gender=Man"] == pytest.approx(1.0)
        assert row["Gender=Woman"] == pytest.approx(0.0)

    def test_single_attribute_row_irp_falls_back_to_arp(self, single_attribute_table):
        row = fairness_row(Ranking([0, 1, 2, 3]), single_attribute_table)
        assert row["IRP"] == row["Gender"]


class TestFairnessTable:
    def test_from_rankings_with_mapping(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(
            tiny_table, {"first": tiny_rankings[0], "second": tiny_rankings[1]}
        )
        assert table.row_labels == ["first", "second"]
        assert len(table.rows) == 2

    def test_from_rankings_with_pairs(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(
            tiny_table, [("a", tiny_rankings[0]), ("b", tiny_rankings[1])]
        )
        assert table.row_labels == ["a", "b"]

    def test_row_lookup(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(tiny_table, {"a": tiny_rankings[0]})
        assert table.row("a") == table.rows[0]

    def test_to_records_includes_label(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(tiny_table, {"a": tiny_rankings[0]})
        records = table.to_records()
        assert records[0]["ranking"] == "a"

    def test_to_text_renders_all_columns(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(tiny_table, {"a": tiny_rankings[0]})
        text = table.to_text()
        assert "Ranking" in text
        assert "IRP" in text
        assert "a" in text

    def test_columns_order_groups_then_attributes(self, tiny_table, tiny_rankings):
        table = FairnessTable.from_rankings(tiny_table, {"a": tiny_rankings[0]})
        columns = table.columns
        assert columns[-1] == "IRP"
        assert columns.index("Gender=Man") < columns.index("Gender")


class TestFormatting:
    def test_format_float(self):
        assert format_float(0.125, 2) == "0.12"
        assert format_float(1.0) == "1.00"
