"""Tests for PD loss (Definition 9) and the Price of Fairness (Equation 13)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import RankingError
from repro.fairness.pd_loss import pd_loss, price_of_fairness


class TestPdLoss:
    def test_identical_base_rankings_and_consensus(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 4)
        assert pd_loss(rankings, Ranking([0, 1, 2])) == 0.0

    def test_fully_reversed_consensus(self):
        rankings = RankingSet.from_orders([[0, 1, 2, 3]] * 2)
        assert pd_loss(rankings, Ranking([3, 2, 1, 0])) == 1.0

    def test_intermediate_value(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [2, 1, 0]])
        # Any consensus disagrees with exactly 3 of the 6 base pairs.
        assert pd_loss(rankings, Ranking([0, 1, 2])) == pytest.approx(0.5)

    def test_single_candidate_is_zero(self):
        rankings = RankingSet.from_orders([[0]])
        assert pd_loss(rankings, Ranking([0])) == 0.0

    def test_universe_mismatch(self):
        rankings = RankingSet.from_orders([[0, 1, 2]])
        with pytest.raises(RankingError):
            pd_loss(rankings, Ranking([0, 1]))

    @given(
        st.lists(st.permutations(list(range(5))), min_size=1, max_size=6),
        st.permutations(list(range(5))),
    )
    @settings(max_examples=60, deadline=None)
    def test_pd_loss_in_unit_interval(self, orders, consensus_order):
        rankings = RankingSet.from_orders(orders)
        value = pd_loss(rankings, Ranking(list(consensus_order)))
        assert 0.0 <= value <= 1.0

    @given(st.lists(st.permutations(list(range(5))), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_pd_loss_plus_reverse_is_one(self, orders):
        """Disagreements with a consensus and its reverse partition all pairs."""
        rankings = RankingSet.from_orders(orders)
        consensus = Ranking(list(range(5)))
        assert pd_loss(rankings, consensus) + pd_loss(
            rankings, consensus.reversed()
        ) == pytest.approx(1.0)


class TestPriceOfFairness:
    def test_zero_when_fair_equals_unaware(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [0, 2, 1]])
        consensus = Ranking([0, 1, 2])
        assert price_of_fairness(rankings, consensus, consensus) == 0.0

    def test_positive_when_fair_consensus_is_farther(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 3)
        unaware = Ranking([0, 1, 2])
        fair = Ranking([2, 1, 0])
        assert price_of_fairness(rankings, fair, unaware) == pytest.approx(1.0)

    def test_sign_reflects_ordering(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 3)
        better = Ranking([0, 1, 2])
        worse = Ranking([1, 0, 2])
        assert price_of_fairness(rankings, worse, better) > 0
        assert price_of_fairness(rankings, better, worse) < 0
