"""Tests for CSV persistence of candidate tables and ranking sets."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.io.csv_io import (
    read_candidate_table,
    read_ranking_set,
    write_candidate_table,
    write_ranking_set,
)


class TestCandidateTableCsv:
    def test_round_trip(self, tmp_path, tiny_table):
        path = tmp_path / "candidates.csv"
        write_candidate_table(tiny_table, path)
        loaded = read_candidate_table(path)
        assert loaded == tiny_table

    def test_missing_name_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Gender,Race\nM,A\n")
        with pytest.raises(ValidationError):
            read_candidate_table(path)

    def test_no_attribute_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name\nalice\n")
        with pytest.raises(ValidationError):
            read_candidate_table(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("name,Gender\n")
        with pytest.raises(ValidationError):
            read_candidate_table(path)


class TestRankingSetCsv:
    def test_round_trip(self, tmp_path, tiny_table, tiny_rankings):
        path = tmp_path / "rankings.csv"
        write_ranking_set(tiny_rankings, tiny_table, path)
        loaded = read_ranking_set(path, tiny_table)
        assert loaded.to_order_lists() == tiny_rankings.to_order_lists()
        assert loaded.labels == tiny_rankings.labels

    def test_bad_header_rejected(self, tmp_path, tiny_table):
        path = tmp_path / "bad.csv"
        path.write_text("ranker,1,2\nmath,c0,c1\n")
        with pytest.raises(ValidationError):
            read_ranking_set(path, tiny_table)

    def test_empty_rankings_rejected(self, tmp_path, tiny_table):
        path = tmp_path / "empty.csv"
        path.write_text("label,1,2,3,4,5,6\n")
        with pytest.raises(ValidationError):
            read_ranking_set(path, tiny_table)

    def test_unknown_candidate_name_rejected(self, tmp_path, tiny_table):
        path = tmp_path / "bad.csv"
        path.write_text("label,1,2,3,4,5,6\nr1,c0,c1,c2,c3,c4,nobody\n")
        with pytest.raises(Exception):
            read_ranking_set(path, tiny_table)
