"""Positioned error reporting for malformed candidate/ranking CSVs.

Unknown candidate names, duplicate names, and ragged rows must surface as
:class:`~repro.exceptions.ValidationError` carrying ``path:row`` (and, where
it applies, the 1-based column) — the same per-line style as
``repro.streaming.replay`` — never as a bare ``KeyError``/``CandidateError``
with no location.
"""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidateTable
from repro.exceptions import ValidationError
from repro.io.csv_io import read_candidate_table, read_ranking_set


@pytest.fixture
def table() -> CandidateTable:
    return CandidateTable(
        {"Gender": ["W", "M", "W"]}, names=["alice", "bob", "carol"]
    )


def _write(tmp_path, name: str, text: str):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestCandidateTableErrors:
    def test_duplicate_name_reports_both_rows(self, tmp_path):
        path = _write(
            tmp_path, "dup.csv", "name,Gender\nalice,W\nbob,M\nalice,W\n"
        )
        with pytest.raises(ValidationError, match=rf"{path}:4: duplicate"):
            read_candidate_table(path)
        with pytest.raises(ValidationError, match="first defined at row 2"):
            read_candidate_table(path)

    def test_short_row_reports_position_and_counts(self, tmp_path):
        path = _write(tmp_path, "short.csv", "name,Gender,Race\nalice,W\n")
        with pytest.raises(
            ValidationError, match=rf"{path}:2: expected 3 columns, got 2"
        ):
            read_candidate_table(path)

    def test_long_row_reports_position_and_counts(self, tmp_path):
        path = _write(tmp_path, "long.csv", "name,Gender\nalice,W,extra,x\n")
        with pytest.raises(
            ValidationError, match=rf"{path}:2: expected 2 columns, got 4"
        ):
            read_candidate_table(path)

    def test_valid_file_round_trips(self, tmp_path):
        path = _write(tmp_path, "ok.csv", "name,Gender\nalice,W\nbob,M\n")
        table = read_candidate_table(path)
        assert table.names == ("alice", "bob")


class TestRankingSetErrors:
    def test_unknown_name_reports_row_and_column(self, tmp_path, table):
        path = _write(
            tmp_path,
            "rk.csv",
            "label,1,2,3\nr0,alice,bob,carol\nr1,alice,dave,carol\n",
        )
        with pytest.raises(
            ValidationError, match=rf"{path}:3: column 3: unknown candidate"
        ):
            read_ranking_set(path, table)

    def test_duplicate_name_reports_both_columns(self, tmp_path, table):
        path = _write(tmp_path, "rk.csv", "label,1,2,3\nr0,alice,bob,alice\n")
        with pytest.raises(
            ValidationError,
            match=rf"{path}:2: column 4: .*already ranked at column 2",
        ):
            read_ranking_set(path, table)

    def test_ragged_row_reports_position(self, tmp_path, table):
        path = _write(tmp_path, "rk.csv", "label,1,2,3\nr0,alice,bob\n")
        with pytest.raises(
            ValidationError, match=rf"{path}:2: expected 3 candidates"
        ):
            read_ranking_set(path, table)

    def test_error_is_not_a_bare_key_error(self, tmp_path, table):
        path = _write(tmp_path, "rk.csv", "label,1,2,3\nr0,alice,dave,carol\n")
        try:
            read_ranking_set(path, table)
        except ValidationError:
            pass
        else:  # pragma: no cover - the read must raise
            pytest.fail("malformed CSV was accepted")

    def test_valid_file_round_trips(self, tmp_path, table):
        path = _write(tmp_path, "rk.csv", "label,1,2,3\nr0,carol,alice,bob\n")
        rankings = read_ranking_set(path, table)
        assert rankings[0].to_list() == [2, 0, 1]
        assert rankings.labels == ("r0",)
