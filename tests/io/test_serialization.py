"""Tests for JSON serialisation helpers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.ranking import Ranking
from repro.exceptions import ValidationError
from repro.io.serialization import (
    candidate_table_from_dict,
    candidate_table_to_dict,
    dump_json,
    load_json,
    ranking_from_dict,
    ranking_set_from_dict,
    ranking_set_to_dict,
    ranking_to_dict,
    to_jsonable,
)


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(0.5)) == 0.5

    def test_numpy_arrays(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_structures(self):
        payload = {"a": [np.float32(1.5), {"b": np.arange(2)}], "r": Ranking([1, 0])}
        converted = to_jsonable(payload)
        json.dumps(converted)  # must not raise
        assert converted["r"] == {"order": [1, 0]}

    def test_plain_values_untouched(self):
        assert to_jsonable("text") == "text"
        assert to_jsonable(3) == 3


class TestRoundTrips:
    def test_ranking_round_trip(self):
        ranking = Ranking([2, 0, 1])
        assert ranking_from_dict(ranking_to_dict(ranking)) == ranking

    def test_ranking_missing_key(self):
        with pytest.raises(ValidationError):
            ranking_from_dict({})

    def test_ranking_set_round_trip(self, tiny_rankings):
        rebuilt = ranking_set_from_dict(ranking_set_to_dict(tiny_rankings))
        assert rebuilt.to_order_lists() == tiny_rankings.to_order_lists()
        assert rebuilt.labels == tiny_rankings.labels
        assert rebuilt.weights.tolist() == tiny_rankings.weights.tolist()

    def test_ranking_set_missing_key(self):
        with pytest.raises(ValidationError):
            ranking_set_from_dict({"labels": []})

    def test_candidate_table_round_trip(self, tiny_table):
        rebuilt = candidate_table_from_dict(candidate_table_to_dict(tiny_table))
        assert rebuilt == tiny_table

    def test_candidate_table_missing_key(self):
        with pytest.raises(ValidationError):
            candidate_table_from_dict({"names": []})

    def test_dump_and_load_json(self, tmp_path, tiny_table):
        path = tmp_path / "table.json"
        dump_json(candidate_table_to_dict(tiny_table), path)
        assert candidate_table_from_dict(load_json(path)) == tiny_table
