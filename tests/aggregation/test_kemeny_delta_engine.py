"""Property tests for the incremental Kemeny-delta engine (KemenyDeltaEngine).

The engine's contract is *exact* equivalence with the from-scratch
evaluators: after any sequence of adjacent swaps, general swaps, block moves,
and bubble passes, the running objective must be bit-identical to recomputing
:func:`repro.core.distances.kemeny_objective` on the materialised ranking,
and the engine-backed :func:`local_kemenization` must return the identical
ranking to the retained from-scratch reference.  These tests drive randomized
move sequences through both paths and compare — the same pattern as
``tests/fairness/test_incremental.py`` for the fairness engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.local_search import (
    local_kemenization,
    local_kemenization_reference,
)
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError


def _random_set(rng: np.random.Generator, n: int, m: int) -> RankingSet:
    return RankingSet([Ranking.random(n, rng) for _ in range(m)])


class TestConstruction:
    def test_initial_objective_matches_scratch(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        assert engine.objective == kemeny_objective(ranking, tiny_rankings)

    def test_to_ranking_round_trip(self, tiny_rankings):
        ranking = Ranking([5, 1, 0, 4, 2, 3])
        assert KemenyDeltaEngine(tiny_rankings, ranking).to_ranking() == ranking

    def test_accepts_precomputed_precedence_matrix(self, tiny_rankings):
        ranking = Ranking([0, 1, 2, 3, 4, 5])
        from_set = KemenyDeltaEngine(tiny_rankings, ranking)
        from_matrix = KemenyDeltaEngine(
            tiny_rankings.precedence_matrix(), ranking
        )
        assert from_matrix.objective == from_set.objective

    def test_universe_mismatch_rejected(self, tiny_rankings):
        with pytest.raises(AggregationError):
            KemenyDeltaEngine(tiny_rankings, Ranking([0, 1]))

    def test_non_square_matrix_rejected(self):
        with pytest.raises(AggregationError):
            KemenyDeltaEngine(np.zeros((3, 4)), Ranking([0, 1, 2]))

    def test_input_ranking_not_mutated(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        engine.apply_swap(0, 4)
        engine.sweep_adjacent()
        assert ranking.to_list() == [0, 3, 5, 1, 2, 4]


class TestDeltaQueries:
    def test_delta_swap_matches_materialised_swap(self, tiny_rankings):
        ranking = Ranking([2, 0, 4, 5, 1, 3])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        objective = kemeny_objective(ranking, tiny_rankings)
        for first in range(6):
            for second in range(first + 1, 6):
                expected = (
                    kemeny_objective(ranking.swap(first, second), tiny_rankings)
                    - objective
                )
                assert engine.delta_swap(first, second) == expected
                # Symmetric in the argument order.
                assert engine.delta_swap(second, first) == expected
        assert engine.delta_swap(3, 3) == 0.0

    def test_delta_adjacent_swap_matches_delta_swap(self, tiny_rankings):
        engine = KemenyDeltaEngine(tiny_rankings, Ranking([4, 1, 0, 2, 5, 3]))
        order = engine.order_list
        for position in range(5):
            assert engine.delta_adjacent_swap(position) == engine.delta_swap(
                order[position], order[position + 1]
            )

    def test_delta_move_matches_materialised_move(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        objective = kemeny_objective(ranking, tiny_rankings)
        for candidate in range(6):
            for new_position in range(6):
                order = ranking.to_list()
                order.remove(candidate)
                order.insert(new_position, candidate)
                expected = (
                    kemeny_objective(Ranking(order), tiny_rankings) - objective
                )
                assert engine.delta_move(candidate, new_position) == expected

    def test_queries_do_not_mutate_state(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        before = engine.objective
        engine.delta_swap(0, 4)
        engine.delta_adjacent_swap(2)
        engine.delta_move(1, 5)
        engine.margin(0, 1)
        assert engine.objective == before
        assert engine.to_ranking() == ranking

    def test_move_target_out_of_range_rejected(self, tiny_rankings):
        engine = KemenyDeltaEngine(tiny_rankings, Ranking.identity(6))
        with pytest.raises(AggregationError):
            engine.apply_move(0, 6)
        # The delta query rejects the same illegal targets as the mutation
        # (a probed delta must never describe an inapplicable move).
        with pytest.raises(AggregationError):
            engine.delta_move(0, -1)
        with pytest.raises(AggregationError):
            engine.delta_move(0, 6)

    def test_move_deltas_matches_delta_move_for_every_target(self, tiny_rankings):
        ranking = Ranking([2, 5, 0, 4, 1, 3])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        for candidate in range(6):
            deltas = engine.move_deltas(candidate)
            assert deltas.shape == (6,)
            for target in range(6):
                # Bit-identical for unweighted sets (integer-valued floats).
                assert deltas[target] == engine.delta_move(candidate, target)

    def test_best_move_ties_break_towards_smallest_position(self, tiny_rankings):
        engine = KemenyDeltaEngine(tiny_rankings, Ranking([2, 5, 0, 4, 1, 3]))
        for candidate in range(6):
            delta, target = engine.best_move(candidate)
            deltas = engine.move_deltas(candidate)
            assert delta == deltas.min()
            assert target == int(np.flatnonzero(deltas == delta)[0])


class TestMoveEdgeCases:
    def test_no_op_move_is_free(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        for candidate in range(6):
            position = engine.positions_list[candidate]
            assert engine.delta_move(candidate, position) == 0.0
            assert engine.apply_move(candidate, position) == 0.0
        assert engine.to_ranking() == ranking
        assert engine.objective == kemeny_objective(ranking, tiny_rankings)

    @pytest.mark.parametrize("target", [0, 5])
    def test_moves_to_both_ends(self, tiny_rankings, target):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        for candidate in range(6):
            engine = KemenyDeltaEngine(tiny_rankings, ranking)
            delta = engine.apply_move(candidate, target)
            moved = engine.to_ranking()
            assert moved.positions[candidate] == target
            expected = ranking.to_list()
            expected.remove(candidate)
            expected.insert(target, candidate)
            assert moved.to_list() == expected
            assert engine.objective == kemeny_objective(moved, tiny_rankings)
            assert delta == engine.objective - kemeny_objective(
                ranking, tiny_rankings
            )

    def test_single_candidate_engine(self):
        rankings = RankingSet.from_orders([[0]])
        engine = KemenyDeltaEngine(rankings, Ranking([0]))
        assert engine.objective == 0.0
        assert engine.delta_move(0, 0) == 0.0
        assert engine.apply_move(0, 0) == 0.0
        assert engine.move_deltas(0).tolist() == [0.0]
        assert engine.best_move(0) == (0.0, 0)
        assert not engine.sweep_adjacent()
        assert engine.to_ranking() == Ranking([0])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_running_objective_exact_through_random_moves(self, seed):
        """After *every* applied block move — not just at the end of the
        sequence — the engine's running objective is bit-identical to
        ``kemeny_objective`` recomputed from scratch on the materialised
        ranking, and the applied delta equals the objective change."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 16))
        rankings = _random_set(rng, n, int(rng.integers(1, 8)))
        engine = KemenyDeltaEngine(rankings, Ranking.random(n, rng))
        previous = engine.objective
        for _ in range(20):
            candidate = int(rng.integers(0, n))
            target = int(rng.integers(0, n))
            delta = engine.apply_move(candidate, target)
            scratch = kemeny_objective(engine.to_ranking(), rankings)
            assert engine.objective == scratch
            assert engine.objective == previous + delta
            previous = scratch


class TestMoveSequences:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_move_sequence_stays_exact(self, seed):
        """Objective values stay bit-identical to the from-scratch evaluator
        through randomized swap / block-move / bubble-pass sequences."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        rankings = _random_set(rng, n, int(rng.integers(1, 10)))
        engine = KemenyDeltaEngine(rankings, Ranking.random(n, rng))
        if seed % 2:
            # Force eager objective tracking on half the examples; the other
            # half exercises the lazy from-current-order computation.
            engine.objective
        for _ in range(30):
            operation = int(rng.integers(0, 4))
            if operation == 0:
                engine.apply_adjacent_swap(int(rng.integers(0, n - 1)))
            elif operation == 1:
                first, second = rng.choice(n, size=2, replace=False)
                engine.apply_swap(int(first), int(second))
            elif operation == 2:
                engine.apply_move(int(rng.integers(0, n)), int(rng.integers(0, n)))
            else:
                engine.sweep_adjacent()
        current = engine.to_ranking()
        assert engine.objective == kemeny_objective(current, rankings)
        assert engine.order_list == current.order.tolist()
        assert engine.positions_list == current.positions.tolist()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_local_kemenization_identical_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        rankings = _random_set(rng, n, int(rng.integers(1, 10)))
        initial = Ranking.random(n, rng)
        for max_passes in (0, 1, 2, 5, 50):
            assert local_kemenization(
                rankings, initial, max_passes=max_passes
            ) == local_kemenization_reference(
                rankings, initial, max_passes=max_passes
            )

    def test_applied_delta_equals_objective_change(self, tiny_rankings, rng):
        engine = KemenyDeltaEngine(tiny_rankings, Ranking.random(6, rng))
        for _ in range(20):
            before = engine.objective
            first, second = rng.choice(6, size=2, replace=False)
            delta = engine.apply_swap(int(first), int(second))
            assert engine.objective == before + delta

    def test_swap_then_swap_back_restores_objective(self, tiny_rankings):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        engine = KemenyDeltaEngine(tiny_rankings, ranking)
        reference = engine.objective
        engine.apply_swap(0, 4)
        engine.apply_swap(0, 4)
        assert engine.to_ranking() == ranking
        assert engine.objective == reference


class TestWeighted:
    def test_weighted_objective_matches_masked_sum(self, tiny_rankings, rng):
        weighted = tiny_rankings.with_weights([0.5, 2.0, 1.25])
        ranking = Ranking.random(6, rng)
        engine = KemenyDeltaEngine(weighted, ranking, weighted=True)
        precedence = weighted.precedence_matrix(weighted=True)
        positions = ranking.positions
        above = positions[:, np.newaxis] < positions[np.newaxis, :]
        assert engine.objective == float(precedence[above].sum())
        for _ in range(15):
            first, second = rng.choice(6, size=2, replace=False)
            engine.apply_swap(int(first), int(second))
        current = engine.to_ranking().positions
        above = current[:, np.newaxis] < current[np.newaxis, :]
        # Weighted margins are genuine floats: the running value is exact up
        # to accumulation order, not bit-identical (see the module docstring).
        assert engine.objective == pytest.approx(float(precedence[above].sum()))
