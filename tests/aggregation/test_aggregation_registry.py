"""Tests for the fairness-unaware aggregator registry and shared base class."""

from __future__ import annotations

import pytest

from repro.aggregation import available_aggregators, get_aggregator
from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError


class TestRegistry:
    def test_all_names_instantiate(self, tiny_rankings):
        for name in available_aggregators():
            aggregator = get_aggregator(name)
            consensus = aggregator.aggregate(tiny_rankings)
            assert isinstance(consensus, Ranking)
            assert consensus.n_candidates == tiny_rankings.n_candidates

    def test_lookup_is_case_insensitive(self):
        assert get_aggregator("BORDA").name == "Borda"

    def test_unknown_name_raises(self):
        with pytest.raises(AggregationError):
            get_aggregator("approval-voting")

    def test_constructor_kwargs_forwarded(self):
        aggregator = get_aggregator("kemeny", backend="branch-and-bound")
        rankings = RankingSet.from_orders([[0, 2, 1]] * 2)
        assert aggregator.aggregate(rankings) == Ranking([0, 2, 1])


class TestBaseClassContract:
    def test_every_registered_method_has_unique_name(self):
        names = [get_aggregator(name).name for name in available_aggregators()]
        assert len(names) == len(set(names))

    def test_result_wrapper_for_plain_ranking(self, tiny_rankings):
        class Trivial(RankAggregator):
            name = "Trivial"

            def _aggregate(self, rankings):
                return rankings[0]

        result = Trivial().aggregate_with_diagnostics(tiny_rankings)
        assert isinstance(result, AggregationResult)
        assert result.method == "Trivial"

    def test_invalid_input_type_rejected(self, tiny_rankings):
        class Trivial(RankAggregator):
            name = "Trivial"

            def _aggregate(self, rankings):
                return rankings[0]

        with pytest.raises(AggregationError):
            Trivial().aggregate("not a ranking set")  # type: ignore[arg-type]

    def test_repr_contains_name(self):
        assert "Borda" in repr(get_aggregator("borda"))
