"""Tests for the pluggable local-search neighbourhood strategies.

Three contracts (see :mod:`repro.aggregation.search`):

1. **Equivalence** — the ``adjacent-swap`` strategy is bit-identical to
   :func:`local_kemenization_reference`, and the engine-backed ``insertion``
   strategy returns the identical ranking to the retained from-scratch
   :func:`insertion_local_search_reference` on every input.
2. **Dominance** — for the same input and pass budget, the ``insertion``
   strategy's Kemeny objective is never worse than the ``adjacent-swap``
   strategy's (the acceptance guarantee the ablation experiment asserts per
   grid cell), and a converged insertion search is locally optimal for
   *every* block move.
3. **Plumbing** — strategy resolution, ``LocalSearchKemenyAggregator``
   diagnostics, and the aggregation registry forward ``strategy=...`` end to
   end.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import get_aggregator
from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.local_search import (
    LocalSearchKemenyAggregator,
    local_kemenization,
    local_kemenization_reference,
)
from repro.aggregation.search import (
    AdjacentSwapStrategy,
    CombinedStrategy,
    InsertionStrategy,
    NeighborhoodStrategy,
    available_strategies,
    get_strategy,
    insertion_local_search_reference,
    local_search,
)
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError


def _random_set(rng: np.random.Generator, n: int, m: int) -> RankingSet:
    return RankingSet([Ranking.random(n, rng) for _ in range(m)])


class TestResolution:
    def test_available_strategies(self):
        assert available_strategies() == ("adjacent-swap", "insertion", "combined")

    @pytest.mark.parametrize("name", ["adjacent-swap", "insertion", "combined"])
    def test_names_resolve(self, name):
        strategy = get_strategy(name)
        assert isinstance(strategy, NeighborhoodStrategy)
        assert strategy.name == name

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(get_strategy("  Insertion "), InsertionStrategy)

    def test_instance_passes_through(self):
        strategy = CombinedStrategy()
        assert get_strategy(strategy) is strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(AggregationError, match="unknown local-search strategy"):
            get_strategy("simulated-annealing")

    def test_strategies_are_picklable(self):
        # The ablation experiment ships strategies through a process pool.
        for name in available_strategies():
            clone = pickle.loads(pickle.dumps(get_strategy(name)))
            assert clone.name == name


class TestEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_adjacent_swap_identical_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 25))
        rankings = _random_set(rng, n, int(rng.integers(1, 8)))
        initial = Ranking.random(n, rng)
        for max_passes in (0, 1, 3, 50):
            assert local_search(
                rankings, initial, strategy="adjacent-swap", max_passes=max_passes
            ) == local_kemenization_reference(
                rankings, initial, max_passes=max_passes
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_insertion_identical_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 25))
        rankings = _random_set(rng, n, int(rng.integers(1, 8)))
        initial = Ranking.random(n, rng)
        for max_passes in (0, 1, 3, 50):
            assert local_search(
                rankings, initial, strategy="insertion", max_passes=max_passes
            ) == insertion_local_search_reference(
                rankings, initial, max_passes=max_passes
            )

    def test_default_strategy_is_local_kemenization(self, tiny_rankings):
        initial = Ranking([5, 4, 3, 2, 1, 0])
        assert local_search(tiny_rankings, initial) == local_kemenization(
            tiny_rankings, initial
        )


class TestDominance:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_insertion_never_worse_than_adjacent(self, seed):
        """The acceptance guarantee: same input, same budget, objective <=."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        rankings = _random_set(rng, n, int(rng.integers(1, 8)))
        initial = Ranking.random(n, rng)
        max_passes = int(rng.choice([1, 2, 5, 50]))
        adjacent = local_search(
            rankings, initial, strategy="adjacent-swap", max_passes=max_passes
        )
        insertion = local_search(
            rankings, initial, strategy="insertion", max_passes=max_passes
        )
        assert kemeny_objective(insertion, rankings) <= kemeny_objective(
            adjacent, rankings
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_converged_insertion_is_block_move_optimal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 18))
        rankings = _random_set(rng, n, int(rng.integers(1, 6)))
        result = local_search(
            rankings, Ranking.random(n, rng), strategy="insertion"
        )
        engine = KemenyDeltaEngine(rankings, result)
        for candidate in range(n):
            delta, _ = engine.best_move(candidate)
            assert delta >= 0.0

    def test_strategies_never_worsen_the_seed(self, tiny_rankings, rng):
        initial = Ranking.random(6, rng)
        before = kemeny_objective(initial, tiny_rankings)
        for name in available_strategies():
            after = local_search(tiny_rankings, initial, strategy=name)
            assert kemeny_objective(after, tiny_rankings) <= before


class TestSearchBehaviour:
    def test_zero_pass_budget_returns_input(self, tiny_rankings):
        initial = Ranking([5, 4, 3, 2, 1, 0])
        for name in available_strategies():
            assert (
                local_search(tiny_rankings, initial, strategy=name, max_passes=0)
                == initial
            )

    def test_single_candidate(self):
        rankings = RankingSet.from_orders([[0]])
        for name in available_strategies():
            assert local_search(rankings, Ranking([0]), strategy=name) == Ranking([0])

    def test_stats_report_passes_and_moves(self, tiny_rankings):
        initial = Ranking([5, 4, 3, 2, 1, 0])
        engine = KemenyDeltaEngine(tiny_rankings, initial)
        stats = AdjacentSwapStrategy().search(engine)
        assert stats.strategy == "adjacent-swap"
        assert stats.n_moves is None
        assert stats.n_passes >= 1

        engine = KemenyDeltaEngine(tiny_rankings, initial)
        stats = InsertionStrategy().search(engine)
        assert stats.strategy == "insertion"
        assert stats.n_moves is not None and stats.n_moves >= 0

        engine = KemenyDeltaEngine(tiny_rankings, initial)
        stats = CombinedStrategy().search(engine)
        assert stats.strategy == "combined"
        assert stats.n_moves is not None and stats.n_moves >= 0

    def test_combined_result_is_adjacent_optimal(self, tiny_rankings, rng):
        result = local_search(
            tiny_rankings, Ranking.random(6, rng), strategy="combined"
        )
        engine = KemenyDeltaEngine(tiny_rankings, result)
        assert not engine.sweep_adjacent()


class TestAggregatorWiring:
    def test_default_name_and_behaviour_unchanged(self, tiny_rankings):
        aggregator = LocalSearchKemenyAggregator()
        assert aggregator.name == "LocalKemeny"
        result = aggregator.aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["strategy"] == "adjacent-swap"
        assert "n_moves" not in result.diagnostics

    def test_insertion_strategy_name_and_diagnostics(self, tiny_rankings):
        aggregator = LocalSearchKemenyAggregator(strategy="insertion")
        assert aggregator.name == "LocalKemeny[insertion]"
        result = aggregator.aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["strategy"] == "insertion"
        assert result.diagnostics["n_moves"] >= 0
        assert result.diagnostics["objective"] == kemeny_objective(
            result.ranking, tiny_rankings
        )

    def test_insertion_aggregator_never_worse(self, small_rankings):
        default = LocalSearchKemenyAggregator().aggregate_with_diagnostics(
            small_rankings
        )
        insertion = LocalSearchKemenyAggregator(
            strategy="insertion"
        ).aggregate_with_diagnostics(small_rankings)
        assert insertion.diagnostics["objective"] <= default.diagnostics["objective"]

    def test_registry_forwards_strategy(self, tiny_rankings):
        aggregator = get_aggregator("local-kemeny", strategy="insertion")
        assert aggregator.name == "LocalKemeny[insertion]"
        assert aggregator.aggregate(tiny_rankings) == LocalSearchKemenyAggregator(
            strategy="insertion"
        ).aggregate(tiny_rankings)

    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(AggregationError):
            LocalSearchKemenyAggregator(strategy="nope")
