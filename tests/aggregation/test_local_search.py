"""Edge-case tests for local Kemenization (engine-backed and reference).

The happy-path behaviour is covered by ``test_pairwise_methods.py`` and the
engine equivalence by ``test_incremental.py``; this module pins down the
boundary behaviour both implementations must share: a zero pass budget, a
single-candidate universe, inputs that are already locally optimal, and the
Condorcet-winner guarantee local Kemenization is used for in the literature.
"""

from __future__ import annotations

import pytest

from repro.aggregation.local_search import (
    LocalSearchKemenyAggregator,
    local_kemenization,
    local_kemenization_reference,
)
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

IMPLEMENTATIONS = [local_kemenization, local_kemenization_reference]


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
class TestEdgeCases:
    def test_zero_pass_budget_returns_input_unchanged(
        self, implementation, tiny_rankings
    ):
        initial = Ranking([5, 4, 3, 2, 1, 0])
        result = implementation(tiny_rankings, initial, max_passes=0)
        assert result == initial
        # The input itself must not have been mutated in place.
        assert initial.to_list() == [5, 4, 3, 2, 1, 0]

    def test_single_candidate_universe(self, implementation):
        rankings = RankingSet.from_orders([[0], [0], [0]])
        assert implementation(rankings, Ranking([0])) == Ranking([0])

    def test_two_candidates_converge_to_majority_order(self, implementation):
        rankings = RankingSet.from_orders([[1, 0], [1, 0], [0, 1]])
        assert implementation(rankings, Ranking([0, 1])) == Ranking([1, 0])

    def test_already_optimal_input_unchanged(self, implementation):
        # A unanimous profile: the shared order is globally (hence locally)
        # optimal, so local search must return it untouched.
        rankings = RankingSet.from_orders([[2, 0, 3, 1]] * 5)
        optimal = Ranking([2, 0, 3, 1])
        assert implementation(rankings, optimal) == optimal

    def test_locally_optimal_input_is_a_fixed_point(
        self, implementation, tiny_rankings
    ):
        # Converge once, then feed the result back in: a second run must be
        # the identity (no adjacent swap can improve a local optimum).
        converged = local_kemenization_reference(
            tiny_rankings, Ranking.identity(6)
        )
        assert implementation(tiny_rankings, converged) == converged

    def test_condorcet_winner_rises_to_the_top(self, implementation):
        # Candidate 3 beats every other candidate in a pairwise majority but
        # starts in last place; each bubble pass lifts it one position, so it
        # must finish first once the pass budget covers the distance.
        rankings = RankingSet.from_orders(
            [
                [3, 0, 1, 2, 4],
                [3, 1, 4, 0, 2],
                [0, 3, 2, 4, 1],
                [1, 3, 4, 2, 0],
                [4, 3, 0, 1, 2],
            ]
        )
        initial = Ranking([0, 1, 2, 4, 3])
        result = implementation(rankings, initial, max_passes=50)
        assert result[0] == 3

    def test_insufficient_passes_lift_condorcet_winner_partially(
        self, implementation
    ):
        # With a single pass the winner gains exactly one position — pinning
        # the pass semantics both implementations must share.
        rankings = RankingSet.from_orders(
            [
                [3, 0, 1, 2, 4],
                [3, 1, 4, 0, 2],
                [0, 3, 2, 4, 1],
                [1, 3, 4, 2, 0],
                [4, 3, 0, 1, 2],
            ]
        )
        initial = Ranking([0, 1, 2, 4, 3])
        one_pass = implementation(rankings, initial, max_passes=1)
        assert one_pass.position_of(3) == initial.position_of(3) - 1

    def test_never_increases_objective(self, implementation, tiny_rankings):
        for order in ([5, 4, 3, 2, 1, 0], [0, 1, 2, 3, 4, 5], [2, 4, 0, 5, 3, 1]):
            initial = Ranking(order)
            result = implementation(tiny_rankings, initial)
            assert kemeny_objective(result, tiny_rankings) <= kemeny_objective(
                initial, tiny_rankings
            )


class TestAggregatorDiagnostics:
    def test_reports_objective_and_passes(self, tiny_rankings):
        result = LocalSearchKemenyAggregator().aggregate_with_diagnostics(
            tiny_rankings
        )
        assert result.diagnostics["objective"] == kemeny_objective(
            result.ranking, tiny_rankings
        )
        assert result.diagnostics["n_passes"] >= 0

    def test_max_passes_zero_returns_borda_seed(self, tiny_rankings):
        from repro.aggregation.borda import BordaAggregator

        seed = BordaAggregator().aggregate(tiny_rankings)
        result = LocalSearchKemenyAggregator(max_passes=0).aggregate(tiny_rankings)
        assert result == seed
