"""Tests for the extension aggregators: MC4 (Markov chain) and Ranked Pairs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.markov_chain import (
    MarkovChainAggregator,
    mc4_transition_matrix,
    stationary_distribution,
)
from repro.aggregation.ranked_pairs import RankedPairsAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.seeded import FairMarkovChainAggregator, FairRankedPairsAggregator
from repro.fairness.parity import mani_rank_satisfied


class TestMc4Internals:
    def test_transition_matrix_is_row_stochastic(self, tiny_rankings):
        transition = mc4_transition_matrix(tiny_rankings)
        assert np.allclose(transition.sum(axis=1), 1.0)
        assert (transition >= 0).all()

    def test_teleport_validation(self, tiny_rankings):
        with pytest.raises(AggregationError):
            mc4_transition_matrix(tiny_rankings, teleport=1.0)
        with pytest.raises(AggregationError):
            MarkovChainAggregator(teleport=-0.1)

    def test_stationary_distribution_sums_to_one(self, tiny_rankings):
        transition = mc4_transition_matrix(tiny_rankings)
        stationary = stationary_distribution(transition)
        assert stationary.sum() == pytest.approx(1.0)
        assert (stationary >= 0).all()

    def test_stationary_is_fixed_point(self, tiny_rankings):
        transition = mc4_transition_matrix(tiny_rankings)
        stationary = stationary_distribution(transition)
        assert np.allclose(stationary @ transition, stationary, atol=1e-8)

    def test_stationary_rejects_non_square(self):
        with pytest.raises(AggregationError):
            stationary_distribution(np.ones((2, 3)))


class TestMc4Aggregation:
    def test_unanimous_rankings_recovered(self):
        rankings = RankingSet.from_orders([[2, 0, 3, 1]] * 4)
        assert MarkovChainAggregator().aggregate(rankings) == Ranking([2, 0, 3, 1])

    def test_condorcet_winner_first(self):
        rankings = RankingSet.from_orders([[2, 0, 1], [2, 1, 0], [0, 2, 1]])
        assert MarkovChainAggregator().aggregate(rankings)[0] == 2

    def test_single_candidate(self):
        rankings = RankingSet.from_orders([[0]])
        assert MarkovChainAggregator().aggregate(rankings) == Ranking([0])

    def test_diagnostics_contain_stationary(self, tiny_rankings):
        result = MarkovChainAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["stationary"].shape == (6,)

    def test_registry_lookup(self, tiny_rankings):
        from repro.aggregation import get_aggregator

        consensus = get_aggregator("mc4").aggregate(tiny_rankings)
        assert consensus.n_candidates == 6


class TestRankedPairs:
    def test_unanimous_rankings_recovered(self):
        rankings = RankingSet.from_orders([[3, 1, 4, 0, 2]] * 3)
        assert RankedPairsAggregator().aggregate(rankings) == Ranking([3, 1, 4, 0, 2])

    def test_condorcet_winner_first(self):
        rankings = RankingSet.from_orders([[2, 0, 1], [2, 1, 0], [0, 2, 1]])
        assert RankedPairsAggregator().aggregate(rankings)[0] == 2

    def test_condorcet_cycle_resolved_by_strongest_majority(self):
        # 0 > 1 (4 votes), 1 > 2 (3 votes), 2 > 0 (3 votes): drop the weakest
        # link consistent with locking the strongest first -> 0 first.
        rankings = RankingSet.from_orders(
            [[0, 1, 2], [0, 1, 2], [1, 2, 0], [2, 0, 1], [0, 1, 2]]
        )
        consensus = RankedPairsAggregator().aggregate(rankings)
        assert consensus[0] == 0

    def test_single_candidate(self):
        rankings = RankingSet.from_orders([[0]])
        assert RankedPairsAggregator().aggregate(rankings) == Ranking([0])

    def test_agrees_with_kemeny_on_strong_consensus(self, small_rankings):
        from repro.aggregation.kemeny import KemenyAggregator
        from repro.core.distances import kemeny_objective

        ranked_pairs = RankedPairsAggregator().aggregate(small_rankings)
        exact = KemenyAggregator().aggregate_with_diagnostics(small_rankings)
        gap = kemeny_objective(ranked_pairs, small_rankings) - exact.diagnostics["objective"]
        assert gap >= -1e-9
        # Ranked pairs is a good Kemeny heuristic on near-consensus profiles.
        assert gap <= 0.05 * exact.diagnostics["objective"] + 5

    @given(st.lists(st.permutations(list(range(5))), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_always_returns_valid_permutation(self, orders):
        rankings = RankingSet.from_orders(orders)
        consensus = RankedPairsAggregator().aggregate(rankings)
        assert sorted(consensus.to_list()) == list(range(5))


class TestFairExtensionMethods:
    @pytest.mark.parametrize(
        "method_class", [FairMarkovChainAggregator, FairRankedPairsAggregator]
    )
    def test_satisfies_mani_rank(self, method_class, small_dataset):
        consensus = method_class().aggregate(small_dataset.rankings, small_dataset.table, 0.1)
        assert mani_rank_satisfied(consensus, small_dataset.table, 0.1)

    def test_registry_names(self):
        from repro.fair import get_fair_method

        assert get_fair_method("fair-mc4").name == "Fair-MC4"
        assert get_fair_method("fair-ranked-pairs").name == "Fair-Ranked-Pairs"
