"""Tests for the exact Kemeny aggregator (MILP and branch-and-bound backends)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.kemeny import KemenyAggregator, exact_kemeny
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError


class TestKemenyAggregator:
    def test_unanimous_rankings(self):
        rankings = RankingSet.from_orders([[2, 0, 3, 1]] * 4)
        assert KemenyAggregator().aggregate(rankings) == Ranking([2, 0, 3, 1])

    def test_single_candidate(self):
        rankings = RankingSet.from_orders([[0]])
        assert KemenyAggregator().aggregate(rankings) == Ranking([0])

    def test_backends_agree(self, tiny_rankings):
        milp = KemenyAggregator(backend="milp").aggregate_with_diagnostics(tiny_rankings)
        bnb = KemenyAggregator(backend="branch-and-bound").aggregate_with_diagnostics(
            tiny_rankings
        )
        assert milp.diagnostics["objective"] == pytest.approx(bnb.diagnostics["objective"])

    def test_auto_backend_small_instance(self, tiny_rankings):
        result = KemenyAggregator(backend="auto").aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["backend"] == "branch-and-bound"

    def test_unknown_backend_rejected(self):
        with pytest.raises(AggregationError):
            KemenyAggregator(backend="gurobi")

    def test_branch_and_bound_rejects_large_instances(self):
        rankings = RankingSet.from_orders([list(range(25))])
        with pytest.raises(AggregationError):
            KemenyAggregator(backend="branch-and-bound").aggregate(rankings)

    def test_condorcet_winner_ranked_first(self):
        rankings = RankingSet.from_orders([[2, 0, 1], [2, 1, 0], [0, 2, 1]])
        assert KemenyAggregator().aggregate(rankings)[0] == 2

    def test_weighted_kemeny_follows_heavy_ranking(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [2, 1, 0]], weights=[10.0, 1.0])
        aggregator = KemenyAggregator(weighted=True)
        assert aggregator.name == "Kemeny-Weighted"
        assert aggregator.aggregate(rankings) == Ranking([0, 1, 2])

    def test_exact_kemeny_convenience(self, tiny_rankings):
        assert exact_kemeny(tiny_rankings) == KemenyAggregator().aggregate(tiny_rankings)

    def test_objective_diagnostic_matches_recomputation(self, tiny_rankings):
        result = KemenyAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert kemeny_objective(result.ranking, tiny_rankings) == pytest.approx(
            result.diagnostics["objective"]
        )

    @given(st.lists(st.permutations(list(range(5))), min_size=1, max_size=7))
    @settings(max_examples=20, deadline=None)
    def test_kemeny_never_worse_than_borda_or_any_base(self, orders):
        """The exact consensus is at least as close to R as any heuristic pick."""
        from repro.aggregation.borda import BordaAggregator

        rankings = RankingSet.from_orders(orders)
        exact = KemenyAggregator().aggregate(rankings)
        exact_cost = kemeny_objective(exact, rankings)
        borda_cost = kemeny_objective(BordaAggregator().aggregate(rankings), rankings)
        assert exact_cost <= borda_cost + 1e-9
        for base in rankings:
            assert exact_cost <= kemeny_objective(base, rankings) + 1e-9
