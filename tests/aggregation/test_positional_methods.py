"""Tests for the positional aggregators: Borda and footrule."""

from __future__ import annotations

import pytest

from repro.aggregation.borda import BordaAggregator, borda_scores
from repro.aggregation.footrule import FootruleAggregator, footrule_cost_matrix
from repro.core.distances import spearman_footrule
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError


class TestBorda:
    def test_scores_single_ranking(self):
        rankings = RankingSet.from_orders([[2, 0, 1]])
        assert borda_scores(rankings).tolist() == [1.0, 0.0, 2.0]

    def test_scores_accumulate_over_rankings(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [1, 0, 2]])
        assert borda_scores(rankings).tolist() == [3.0, 3.0, 0.0]

    def test_weighted_scores(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[3.0, 1.0])
        assert borda_scores(rankings, weighted=True).tolist() == [3.0, 1.0]

    def test_unanimous_input_recovered(self):
        rankings = RankingSet.from_orders([[3, 1, 0, 2]] * 5)
        assert BordaAggregator().aggregate(rankings) == Ranking([3, 1, 0, 2])

    def test_tie_break_is_deterministic(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [2, 1, 0]])
        # All candidates tie on Borda points; ties break by candidate id.
        assert BordaAggregator().aggregate(rankings) == Ranking([0, 1, 2])

    def test_diagnostics_contain_scores(self, tiny_rankings):
        result = BordaAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert result.method == "Borda"
        assert len(result.diagnostics["scores"]) == tiny_rankings.n_candidates

    def test_rejects_non_ranking_set(self):
        with pytest.raises(AggregationError):
            BordaAggregator().aggregate([[0, 1]])  # type: ignore[arg-type]

    def test_callable_interface(self, tiny_rankings):
        aggregator = BordaAggregator()
        assert aggregator(tiny_rankings) == aggregator.aggregate(tiny_rankings)


class TestFootrule:
    def test_cost_matrix_shape_and_values(self):
        rankings = RankingSet.from_orders([[0, 1, 2]])
        cost = footrule_cost_matrix(rankings)
        assert cost.shape == (3, 3)
        # Candidate 0 is at position 0; placing it at position 2 costs 2.
        assert cost[0, 2] == 2.0
        assert cost[0, 0] == 0.0

    def test_unanimous_input_recovered(self):
        rankings = RankingSet.from_orders([[2, 3, 1, 0]] * 3)
        assert FootruleAggregator().aggregate(rankings) == Ranking([2, 3, 1, 0])

    def test_footrule_consensus_minimises_total_footrule(self):
        rankings = RankingSet.from_orders(
            [[0, 1, 2, 3], [1, 0, 2, 3], [0, 1, 3, 2], [2, 0, 1, 3]]
        )
        consensus = FootruleAggregator().aggregate(rankings)
        optimal_cost = sum(spearman_footrule(consensus, base) for base in rankings)
        from itertools import permutations

        brute = min(
            sum(spearman_footrule(Ranking(list(order)), base) for base in rankings)
            for order in permutations(range(4))
        )
        assert optimal_cost == brute

    def test_weighted_footrule(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[5.0, 1.0])
        assert FootruleAggregator(weighted=True).aggregate(rankings) == Ranking([0, 1])

    def test_diagnostics_cost(self, tiny_rankings):
        result = FootruleAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["assignment_cost"] >= 0.0
