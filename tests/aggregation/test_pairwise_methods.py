"""Tests for the pairwise aggregators: Copeland, Schulze, Pick-A-Perm, local search."""

from __future__ import annotations

import numpy as np

from repro.aggregation.copeland import CopelandAggregator, copeland_scores
from repro.aggregation.local_search import LocalSearchKemenyAggregator, local_kemenization
from repro.aggregation.pick_a_perm import PickAPermAggregator
from repro.aggregation.schulze import SchulzeAggregator, schulze_scores, strongest_paths
from repro.core.distances import kemeny_objective, kendall_tau
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet


class TestCopeland:
    def test_scores_unanimous(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 3)
        assert copeland_scores(rankings).tolist() == [2.0, 1.0, 0.0]

    def test_condorcet_winner_is_ranked_first(self):
        # Candidate 2 beats every other candidate in a majority of rankings.
        rankings = RankingSet.from_orders([[2, 0, 1], [2, 1, 0], [0, 2, 1]])
        consensus = CopelandAggregator().aggregate(rankings)
        assert consensus[0] == 2

    def test_tie_counts_for_both(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]])
        assert copeland_scores(rankings).tolist() == [1.0, 1.0]

    def test_unanimous_input_recovered(self):
        rankings = RankingSet.from_orders([[1, 3, 0, 2]] * 4)
        assert CopelandAggregator().aggregate(rankings) == Ranking([1, 3, 0, 2])

    def test_borda_tie_break_can_be_disabled(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]])
        plain = CopelandAggregator(tie_break_with_borda=False).aggregate(rankings)
        assert plain == Ranking([0, 1])


class TestSchulze:
    def test_strongest_paths_simple(self):
        support = np.array([[0.0, 3.0], [1.0, 0.0]])
        paths = strongest_paths(support)
        assert paths[0, 1] == 3.0
        assert paths[1, 0] == 0.0

    def test_strongest_paths_indirect_route(self):
        # 0 -> 1 strong, 1 -> 2 strong, 0 -> 2 weak directly: path via 1 wins.
        support = np.array(
            [
                [0.0, 8.0, 1.0],
                [2.0, 0.0, 8.0],
                [9.0 - 8.0, 2.0, 0.0],
            ]
        )
        paths = strongest_paths(support)
        assert paths[0, 2] == 8.0

    def test_condorcet_winner_first(self):
        rankings = RankingSet.from_orders([[2, 0, 1], [2, 1, 0], [0, 2, 1]])
        assert SchulzeAggregator().aggregate(rankings)[0] == 2

    def test_unanimous_input_recovered(self):
        rankings = RankingSet.from_orders([[4, 0, 3, 1, 2]] * 3)
        assert SchulzeAggregator().aggregate(rankings) == Ranking([4, 0, 3, 1, 2])

    def test_scores_monotone_with_wins(self, tiny_rankings):
        scores = schulze_scores(tiny_rankings)
        assert scores.shape == (6,)
        assert scores.max() <= 5

    def test_diagnostics_contain_paths(self, tiny_rankings):
        result = SchulzeAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert result.diagnostics["strongest_paths"].shape == (6, 6)


class TestPickAPerm:
    def test_returns_one_of_the_base_rankings(self, tiny_rankings):
        consensus = PickAPermAggregator().aggregate(tiny_rankings)
        assert any(consensus == base for base in tiny_rankings)

    def test_picks_the_central_ranking(self):
        central = [0, 1, 2, 3]
        rankings = RankingSet.from_orders(
            [central, [1, 0, 2, 3], [0, 1, 3, 2], [3, 2, 1, 0]]
        )
        result = PickAPermAggregator().aggregate_with_diagnostics(rankings)
        assert result.ranking == Ranking(central)
        assert result.diagnostics["selected_index"] == 0

    def test_diagnostics_report_distance(self, tiny_rankings):
        result = PickAPermAggregator().aggregate_with_diagnostics(tiny_rankings)
        expected = sum(
            kendall_tau(result.ranking, other)
            for other in tiny_rankings
            if other != result.ranking
        )
        assert result.diagnostics["total_distance"] == expected


class TestLocalKemenization:
    def test_never_increases_kemeny_objective(self, tiny_rankings):
        seed = Ranking([5, 4, 3, 2, 1, 0])
        improved = local_kemenization(tiny_rankings, seed)
        assert kemeny_objective(improved, tiny_rankings) <= kemeny_objective(
            seed, tiny_rankings
        )

    def test_local_optimality_under_adjacent_swaps(self, tiny_rankings):
        improved = local_kemenization(tiny_rankings, Ranking.identity(6))
        objective = kemeny_objective(improved, tiny_rankings)
        for position in range(5):
            swapped = improved.swap(
                improved.candidate_at(position), improved.candidate_at(position + 1)
            )
            assert kemeny_objective(swapped, tiny_rankings) >= objective

    def test_aggregator_close_to_exact_kemeny(self, tiny_rankings):
        from repro.aggregation.kemeny import KemenyAggregator

        heuristic = LocalSearchKemenyAggregator().aggregate(tiny_rankings)
        exact = KemenyAggregator().aggregate_with_diagnostics(tiny_rankings)
        gap = kemeny_objective(heuristic, tiny_rankings) - exact.diagnostics["objective"]
        assert gap >= 0
        assert gap <= 3  # near-optimal on this tiny instance
