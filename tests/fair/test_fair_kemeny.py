"""Tests for Fair-Kemeny (the MANI-Rank-constrained exact Kemeny ILP)."""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidateTable
from repro.core.distances import kemeny_objective
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError, InfeasibleProblemError
from repro.fair.fair_kemeny import FairKemenyAggregator, add_parity_constraints
from repro.fairness.parity import mani_rank_satisfied, parity_scores
from repro.optimize.model import LinearOrderingModel


class TestFairKemeny:
    def test_satisfies_mani_rank(self, tiny_table, tiny_rankings):
        consensus = FairKemenyAggregator().aggregate(tiny_rankings, tiny_table, 0.35)
        assert mani_rank_satisfied(consensus, tiny_table, 0.35)

    def test_optimal_among_fair_rankings(self, tiny_table, tiny_rankings):
        """Brute force check: no fair permutation has a lower Kemeny objective."""
        from itertools import permutations

        from repro.core.ranking import Ranking

        delta = 0.35
        result = FairKemenyAggregator(mip_rel_gap=None).aggregate_with_diagnostics(
            tiny_rankings, tiny_table, delta
        )
        best_fair = min(
            kemeny_objective(Ranking(list(order)), tiny_rankings)
            for order in permutations(range(6))
            if mani_rank_satisfied(Ranking(list(order)), tiny_table, delta)
        )
        assert result.diagnostics["objective"] == pytest.approx(best_fair)

    def test_unconstrained_matches_plain_kemeny_with_loose_delta(
        self, tiny_table, tiny_rankings
    ):
        from repro.aggregation.kemeny import KemenyAggregator

        fair = FairKemenyAggregator(mip_rel_gap=None).aggregate_with_diagnostics(
            tiny_rankings, tiny_table, 1.0
        )
        plain = KemenyAggregator().aggregate_with_diagnostics(tiny_rankings)
        assert fair.diagnostics["objective"] == pytest.approx(plain.diagnostics["objective"])

    def test_stricter_delta_never_decreases_objective(self, tiny_table, tiny_rankings):
        objectives = []
        for delta in (1.0, 0.5, 0.35):
            result = FairKemenyAggregator(mip_rel_gap=None).aggregate_with_diagnostics(
                tiny_rankings, tiny_table, delta
            )
            objectives.append(result.diagnostics["objective"])
        assert objectives[0] <= objectives[1] <= objectives[2]

    def test_infeasible_delta_raises(self):
        # All-singleton intersectional groups force IRP = 1 for any ranking.
        table = CandidateTable({"A": ["x", "x", "y", "y"], "B": ["u", "v", "u", "v"]})
        rankings = RankingSet.from_orders([[0, 1, 2, 3]])
        with pytest.raises(InfeasibleProblemError):
            FairKemenyAggregator().aggregate(rankings, table, 0.5)

    def test_per_entity_thresholds(self, tiny_table, tiny_rankings):
        from repro.fairness.thresholds import FairnessThresholds

        thresholds = FairnessThresholds(1.0, {"Gender": 0.4})
        consensus = FairKemenyAggregator().aggregate(tiny_rankings, tiny_table, thresholds)
        assert parity_scores(consensus, tiny_table)["Gender"] <= 0.4 + 1e-6

    def test_universe_mismatch_rejected(self, tiny_table):
        rankings = RankingSet.from_orders([[0, 1, 2]])
        with pytest.raises(AggregationError):
            FairKemenyAggregator().aggregate(rankings, tiny_table, 0.2)

    def test_unknown_constraint_mode_rejected(self):
        with pytest.raises(AggregationError):
            FairKemenyAggregator(constraint_mode="everything")

    def test_unknown_formulation_rejected(self):
        with pytest.raises(AggregationError):
            FairKemenyAggregator(formulation="quadratic")

    def test_diagnostics_reported(self, tiny_table, tiny_rankings):
        result = FairKemenyAggregator().aggregate_with_diagnostics(
            tiny_rankings, tiny_table, 0.35
        )
        assert result.diagnostics["n_parity_constraints"] > 0
        assert result.diagnostics["optimal"] in (True, False)
        assert result.diagnostics["formulation"] == "minmax"


class TestFormulations:
    def test_minmax_and_pairwise_give_same_objective(self, tiny_table, tiny_rankings):
        delta = 0.35
        compact = FairKemenyAggregator(
            formulation="minmax", mip_rel_gap=None
        ).aggregate_with_diagnostics(tiny_rankings, tiny_table, delta)
        pairwise = FairKemenyAggregator(
            formulation="pairwise", mip_rel_gap=None
        ).aggregate_with_diagnostics(tiny_rankings, tiny_table, delta)
        assert compact.diagnostics["objective"] == pytest.approx(
            pairwise.diagnostics["objective"]
        )

    def test_add_parity_constraints_counts(self, tiny_table, tiny_rankings):
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        added = add_parity_constraints(model, tiny_table, "Race", 0.2, formulation="pairwise")
        assert added == 1  # two race groups -> one pairwise constraint
        model2 = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        added2 = add_parity_constraints(model2, tiny_table, "Race", 0.2, formulation="minmax")
        assert added2 == 2 * 2 + 1
        assert model2.n_auxiliary == 2

    def test_single_group_entity_adds_nothing(self, tiny_rankings):
        table = CandidateTable(
            {"Gender": ["M"] * 6}, domains={"Gender": ("M", "F")}
        )
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        assert add_parity_constraints(model, table, "Gender", 0.1) == 0


class TestConstraintModes:
    def test_attributes_only_leaves_intersection_unconstrained(self, tiny_table):
        aggregator = FairKemenyAggregator(constraint_mode="attributes-only")
        assert aggregator.constrained_entities(tiny_table) == ("Gender", "Race")
        assert not aggregator.guarantees_mani_rank

    def test_intersection_only(self, tiny_table):
        aggregator = FairKemenyAggregator(constraint_mode="intersection-only")
        assert aggregator.constrained_entities(tiny_table) == (tiny_table.INTERSECTION,)

    def test_full_mani_rank(self, tiny_table):
        aggregator = FairKemenyAggregator()
        assert aggregator.constrained_entities(tiny_table) == (
            "Gender",
            "Race",
            tiny_table.INTERSECTION,
        )

    def test_single_attribute_table_has_no_intersection_entity(self, single_attribute_table):
        aggregator = FairKemenyAggregator()
        assert aggregator.constrained_entities(single_attribute_table) == ("Gender",)

    def test_attribute_only_consensus_respects_attribute_threshold(
        self, tiny_table, tiny_rankings
    ):
        consensus = FairKemenyAggregator(constraint_mode="attributes-only").aggregate(
            tiny_rankings, tiny_table, 0.35
        )
        scores = parity_scores(consensus, tiny_table)
        assert scores["Gender"] <= 0.35 + 1e-6
        assert scores["Race"] <= 0.35 + 1e-6
