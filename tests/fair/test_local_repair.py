"""Tests for the fairness-preserving local Kemeny repair.

The repair's contract has three parts: (1) the engine-backed implementation
is *exactly* equivalent to the from-scratch reference (same swap sequence,
same final ranking, bit-identical objective); (2) the repair never leaves the
MANI-Rank-feasible region and never worsens the Kemeny objective; (3) the
``local_repair`` option of the seeded MFCR methods wires it in end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.local_repair import (
    fair_insertion_kemenization,
    fair_insertion_kemenization_reference,
    fair_local_kemenization,
    fair_local_kemenization_reference,
    fair_local_search,
)
from repro.fair.make_mr_fair import make_mr_fair
from repro.fair.registry import get_fair_method
from repro.fair.seeded import FairBordaAggregator
from repro.fairness.parity import mani_rank_satisfied


def _random_table(rng: np.random.Generator, n: int) -> CandidateTable:
    """Random candidate table where every attribute has >= 2 non-empty groups."""
    columns = {}
    for index in range(int(rng.integers(1, 3))):
        cardinality = int(rng.integers(2, 4))
        values = [f"v{v}" for v in range(cardinality)]
        values += [f"v{int(v)}" for v in rng.integers(0, cardinality, n - cardinality)]
        rng.shuffle(values)
        columns[f"P{index}"] = values
    return CandidateTable(columns)


class TestEquivalenceWithReference:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_engine_and_reference_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 22))
        table = _random_table(rng, n)
        rankings = RankingSet([Ranking.random(n, rng) for _ in range(int(rng.integers(2, 8)))])
        delta = float(rng.choice([0.2, 0.4, 0.6]))
        try:
            corrected = make_mr_fair(Ranking.random(n, rng), table, delta).ranking
        except AggregationError:
            # The random group structure can make delta infeasible; the
            # repair contract only concerns feasible inputs.
            return
        fast = fair_local_kemenization(rankings, corrected, table, delta)
        reference = fair_local_kemenization_reference(
            rankings, corrected, table, delta
        )
        assert fast.ranking == reference.ranking
        assert fast.n_swaps == reference.n_swaps
        assert fast.n_passes == reference.n_passes
        assert fast.objective == reference.objective
        assert fast.objective == kemeny_objective(fast.ranking, rankings)


class TestRepairGuarantees:
    def test_preserves_feasibility_and_objective(self, small_dataset):
        delta = 0.2
        corrected = make_mr_fair(
            Ranking.identity(small_dataset.table.n_candidates),
            small_dataset.table,
            delta,
        ).ranking
        repaired = fair_local_kemenization(
            small_dataset.rankings, corrected, small_dataset.table, delta
        )
        assert mani_rank_satisfied(repaired.ranking, small_dataset.table, delta)
        assert repaired.objective <= kemeny_objective(
            corrected, small_dataset.rankings
        )

    def test_no_feasible_improvement_is_identity(self, small_dataset):
        delta = 0.2
        corrected = make_mr_fair(
            Ranking.identity(small_dataset.table.n_candidates),
            small_dataset.table,
            delta,
        ).ranking
        first = fair_local_kemenization(
            small_dataset.rankings, corrected, small_dataset.table, delta
        )
        # A repaired ranking is a fixed point of the repair.
        second = fair_local_kemenization(
            small_dataset.rankings, first.ranking, small_dataset.table, delta
        )
        assert second.ranking == first.ranking
        assert second.n_swaps == 0

    def test_zero_pass_budget_returns_input(self, small_dataset):
        ranking = Ranking.identity(small_dataset.table.n_candidates)
        result = fair_local_kemenization(
            small_dataset.rankings, ranking, small_dataset.table, 1.0, max_passes=0
        )
        assert result.ranking == ranking
        assert result.n_swaps == 0

    def test_universe_mismatch_rejected(self, small_dataset):
        with pytest.raises(AggregationError):
            fair_local_kemenization(
                small_dataset.rankings, Ranking([0, 1]), small_dataset.table, 0.2
            )

    def test_trivial_threshold_reduces_to_local_kemenization(self, small_dataset):
        # With delta = 1 every ranking is feasible, so the repair must equal
        # plain local Kemenization.
        from repro.aggregation.local_search import local_kemenization

        initial = Ranking.identity(small_dataset.table.n_candidates)
        repaired = fair_local_kemenization(
            small_dataset.rankings, initial, small_dataset.table, 1.0
        )
        assert repaired.ranking == local_kemenization(
            small_dataset.rankings, initial
        )


class TestSeededWiring:
    def test_local_repair_option_keeps_feasibility_and_helps_objective(
        self, small_dataset
    ):
        delta = 0.2
        plain = FairBordaAggregator().aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, delta
        )
        repaired = FairBordaAggregator(
            local_repair=True
        ).aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, delta
        )
        assert mani_rank_satisfied(repaired.ranking, small_dataset.table, delta)
        assert "repair_swaps" in repaired.diagnostics
        assert repaired.diagnostics["repair_objective"] <= kemeny_objective(
            plain.ranking, small_dataset.rankings
        )

    def test_registry_exposes_repaired_variant(self, small_dataset):
        method = get_fair_method("fair-borda-repaired")
        assert method.name == "Fair-Borda+LK"
        consensus = method.aggregate(
            small_dataset.rankings, small_dataset.table, 0.2
        )
        assert mani_rank_satisfied(consensus, small_dataset.table, 0.2)


class TestInsertionRepair:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_engine_and_reference_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 18))
        table = _random_table(rng, n)
        rankings = RankingSet([Ranking.random(n, rng) for _ in range(int(rng.integers(2, 8)))])
        delta = float(rng.choice([0.2, 0.4, 0.6]))
        try:
            corrected = make_mr_fair(Ranking.random(n, rng), table, delta).ranking
        except AggregationError:
            return
        fast = fair_insertion_kemenization(rankings, corrected, table, delta)
        reference = fair_insertion_kemenization_reference(
            rankings, corrected, table, delta
        )
        assert fast.ranking == reference.ranking
        assert fast.n_swaps == reference.n_swaps
        assert fast.n_moves == reference.n_moves
        assert fast.n_passes == reference.n_passes
        assert fast.objective == reference.objective
        assert fast.objective == kemeny_objective(fast.ranking, rankings)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_never_worse_than_adjacent_repair_and_stays_feasible(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 18))
        table = _random_table(rng, n)
        rankings = RankingSet([Ranking.random(n, rng) for _ in range(int(rng.integers(2, 8)))])
        delta = float(rng.choice([0.2, 0.4, 0.6]))
        try:
            corrected = make_mr_fair(Ranking.random(n, rng), table, delta).ranking
        except AggregationError:
            return
        adjacent = fair_local_kemenization(rankings, corrected, table, delta)
        insertion = fair_insertion_kemenization(rankings, corrected, table, delta)
        assert insertion.objective <= adjacent.objective
        assert mani_rank_satisfied(insertion.ranking, table, delta)

    def test_zero_pass_budget_returns_input(self, small_dataset):
        ranking = Ranking.identity(small_dataset.table.n_candidates)
        result = fair_insertion_kemenization(
            small_dataset.rankings, ranking, small_dataset.table, 1.0, max_passes=0
        )
        assert result.ranking == ranking
        assert result.n_swaps == 0
        assert result.n_moves == 0

    def test_repaired_ranking_is_a_fixed_point(self, small_dataset):
        delta = 0.2
        corrected = make_mr_fair(
            Ranking.identity(small_dataset.table.n_candidates),
            small_dataset.table,
            delta,
        ).ranking
        first = fair_insertion_kemenization(
            small_dataset.rankings, corrected, small_dataset.table, delta
        )
        second = fair_insertion_kemenization(
            small_dataset.rankings, first.ranking, small_dataset.table, delta
        )
        assert second.ranking == first.ranking
        assert second.n_swaps == 0
        assert second.n_moves == 0

    def test_trivial_threshold_reduces_to_insertion_search(self, small_dataset):
        # With delta = 1 every ranking is feasible, so the fair insertion
        # repair must equal the unconstrained insertion local search.
        from repro.aggregation.search import local_search

        initial = Ranking.identity(small_dataset.table.n_candidates)
        repaired = fair_insertion_kemenization(
            small_dataset.rankings, initial, small_dataset.table, 1.0
        )
        assert repaired.ranking == local_search(
            small_dataset.rankings, initial, strategy="insertion"
        )


class TestFairLocalSearchDispatch:
    def test_adjacent_swap_dispatches_to_local_kemenization(self, small_dataset):
        initial = Ranking.identity(small_dataset.table.n_candidates)
        via_dispatch = fair_local_search(
            small_dataset.rankings, initial, small_dataset.table, 0.3
        )
        direct = fair_local_kemenization(
            small_dataset.rankings, initial, small_dataset.table, 0.3
        )
        assert via_dispatch == direct

    def test_insertion_dispatches_to_insertion_repair(self, small_dataset):
        initial = Ranking.identity(small_dataset.table.n_candidates)
        via_dispatch = fair_local_search(
            small_dataset.rankings,
            initial,
            small_dataset.table,
            0.3,
            strategy="insertion",
        )
        direct = fair_insertion_kemenization(
            small_dataset.rankings, initial, small_dataset.table, 0.3
        )
        assert via_dispatch == direct

    def test_combined_preserves_feasibility_and_objective(self, small_dataset):
        delta = 0.2
        corrected = make_mr_fair(
            Ranking.identity(small_dataset.table.n_candidates),
            small_dataset.table,
            delta,
        ).ranking
        result = fair_local_search(
            small_dataset.rankings,
            corrected,
            small_dataset.table,
            delta,
            strategy="combined",
        )
        assert mani_rank_satisfied(result.ranking, small_dataset.table, delta)
        assert result.objective <= kemeny_objective(
            corrected, small_dataset.rankings
        )
        assert result.n_moves is not None

    def test_unknown_strategy_rejected(self, small_dataset):
        with pytest.raises(AggregationError):
            fair_local_search(
                small_dataset.rankings,
                Ranking.identity(small_dataset.table.n_candidates),
                small_dataset.table,
                0.3,
                strategy="nope",
            )


class TestInsertionSeededWiring:
    def test_strategy_name_selects_the_insertion_repair(self, small_dataset):
        delta = 0.2
        adjacent = FairBordaAggregator(
            local_repair=True
        ).aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, delta
        )
        insertion = FairBordaAggregator(
            local_repair="insertion"
        ).aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, delta
        )
        assert insertion.diagnostics["repair_strategy"] == "insertion"
        assert "repair_moves" in insertion.diagnostics
        assert mani_rank_satisfied(insertion.ranking, small_dataset.table, delta)
        assert (
            insertion.diagnostics["repair_objective"]
            <= adjacent.diagnostics["repair_objective"]
        )

    def test_invalid_strategy_fails_at_construction(self):
        with pytest.raises(AggregationError):
            FairBordaAggregator(local_repair="nope")

    def test_with_local_repair_clones(self, small_dataset):
        base = get_fair_method("fair-borda")
        clone = base.with_local_repair("insertion")
        assert base.local_repair is False
        assert clone.local_repair == "insertion"
        assert clone.name == base.name
        direct = FairBordaAggregator(local_repair="insertion").aggregate(
            small_dataset.rankings, small_dataset.table, 0.2
        )
        assert (
            clone.aggregate(small_dataset.rankings, small_dataset.table, 0.2)
            == direct
        )

    def test_registry_exposes_insertion_variant(self, small_dataset):
        method = get_fair_method("fair-borda-insertion")
        assert method.name == "Fair-Borda+Ins"
        delta = 0.2
        consensus = method.aggregate(
            small_dataset.rankings, small_dataset.table, delta
        )
        assert mani_rank_satisfied(consensus, small_dataset.table, delta)
        repaired = get_fair_method("fair-borda-repaired").aggregate(
            small_dataset.rankings, small_dataset.table, delta
        )
        assert kemeny_objective(
            consensus, small_dataset.rankings
        ) <= kemeny_objective(repaired, small_dataset.rankings)
