"""Tests for the seeded MFCR methods (Fair-Borda/Copeland/Schulze) and the baselines."""

from __future__ import annotations

import pytest

from repro.aggregation.borda import BordaAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.baselines import (
    CorrectFairestPermBaseline,
    KemenyWeightedBaseline,
    PickFairestPermBaseline,
    UnawareKemenyBaseline,
    rank_base_rankings_by_fairness,
    unfairness_score,
)
from repro.fair.registry import PAPER_LABELS, available_fair_methods, baseline_methods, get_fair_method, proposed_methods
from repro.fair.seeded import (
    FairBordaAggregator,
    FairCopelandAggregator,
    FairFootruleAggregator,
    FairSchulzeAggregator,
    SeededFairAggregator,
)
from repro.fairness.parity import mani_rank_satisfied, parity_scores
from repro.fairness.pd_loss import pd_loss


SEEDED_CLASSES = [
    FairBordaAggregator,
    FairCopelandAggregator,
    FairSchulzeAggregator,
    FairFootruleAggregator,
]


class TestSeededMethods:
    @pytest.mark.parametrize("method_class", SEEDED_CLASSES)
    def test_satisfies_mani_rank(self, method_class, small_dataset):
        method = method_class()
        consensus = method.aggregate(small_dataset.rankings, small_dataset.table, 0.1)
        assert mani_rank_satisfied(consensus, small_dataset.table, 0.1)

    @pytest.mark.parametrize("method_class", SEEDED_CLASSES)
    def test_result_reports_seed_and_swaps(self, method_class, small_dataset):
        result = method_class().aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, 0.1
        )
        assert result.unaware_ranking is not None
        assert result.diagnostics["n_swaps"] >= 0
        assert result.method.startswith("Fair-")

    def test_generic_seeded_wrapper_names_itself(self):
        wrapped = SeededFairAggregator(BordaAggregator())
        assert wrapped.name == "Fair-Borda"
        assert wrapped.seed_aggregator.name == "Borda"

    def test_loose_delta_returns_seed_consensus(self, small_dataset):
        fair = FairBordaAggregator().aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, 1.0
        )
        assert fair.ranking == fair.unaware_ranking
        assert fair.diagnostics["n_swaps"] == 0

    def test_fair_consensus_costs_pd_loss(self, small_dataset):
        result = FairCopelandAggregator().aggregate_with_diagnostics(
            small_dataset.rankings, small_dataset.table, 0.1
        )
        assert pd_loss(small_dataset.rankings, result.ranking) >= pd_loss(
            small_dataset.rankings, result.unaware_ranking
        ) - 1e-9

    def test_guarantee_enforced_by_base_class(self, small_dataset):
        class Broken(SeededFairAggregator):
            def _aggregate(self, rankings, table, delta):
                from repro.fair.base import FairAggregationResult

                # Return the (unfair) seed without correcting it.
                seed = self.seed_aggregator.aggregate(rankings)
                return FairAggregationResult(ranking=seed, method=self.name)

        broken = Broken(BordaAggregator(), name="Broken")
        with pytest.raises(AggregationError):
            broken.aggregate(small_dataset.rankings, small_dataset.table, 0.05)


class TestFairnessOrderingHelpers:
    def test_unfairness_score_is_max_parity(self, tiny_table, biased_ranking_for_tiny_table):
        assert unfairness_score(biased_ranking_for_tiny_table, tiny_table) == max(
            parity_scores(biased_ranking_for_tiny_table, tiny_table).values()
        )

    def test_rank_base_rankings_by_fairness_order(self, tiny_table):
        biased = Ranking([0, 3, 5, 1, 2, 4])   # men block first
        fairer = Ranking([0, 1, 3, 2, 5, 4])   # mixed
        rankings = RankingSet([biased, fairer], labels=["biased", "fairer"])
        order = rank_base_rankings_by_fairness(rankings, tiny_table)
        assert order[0] == 0  # least fair first
        assert order[-1] == 1


class TestBaselines:
    def test_unaware_kemeny_reports_itself_as_reference(self, tiny_table, tiny_rankings):
        result = UnawareKemenyBaseline().aggregate_with_diagnostics(
            tiny_rankings, tiny_table, 0.1
        )
        assert result.ranking == result.unaware_ranking
        assert result.method == "Kemeny"

    def test_pick_fairest_perm_returns_fairest_base(self, tiny_table):
        biased = Ranking([0, 3, 5, 1, 2, 4])
        fairer = Ranking([0, 1, 3, 2, 5, 4])
        rankings = RankingSet([biased, fairer])
        result = PickFairestPermBaseline().aggregate_with_diagnostics(
            rankings, tiny_table, 0.1
        )
        assert result.ranking == fairer
        assert result.diagnostics["selected_index"] == 1

    def test_correct_fairest_perm_satisfies_threshold(self, small_dataset):
        consensus = CorrectFairestPermBaseline().aggregate(
            small_dataset.rankings, small_dataset.table, 0.1
        )
        assert mani_rank_satisfied(consensus, small_dataset.table, 0.1)

    def test_kemeny_weighted_weights_fairest_highest(self, tiny_table):
        biased = Ranking([0, 3, 5, 1, 2, 4])
        fairer = Ranking([0, 1, 3, 2, 5, 4])
        rankings = RankingSet([biased, fairer])
        result = KemenyWeightedBaseline().aggregate_with_diagnostics(
            rankings, tiny_table, 0.1
        )
        weights = result.diagnostics["weights"]
        assert weights[1] > weights[0]
        assert weights[1] == rankings.n_rankings

    def test_baselines_do_not_promise_fairness(self):
        assert not UnawareKemenyBaseline.guarantees_mani_rank
        assert not KemenyWeightedBaseline.guarantees_mani_rank
        assert not PickFairestPermBaseline.guarantees_mani_rank
        assert CorrectFairestPermBaseline.guarantees_mani_rank


class TestRegistry:
    def test_paper_labels_cover_a_and_b_methods(self):
        assert set(PAPER_LABELS) == {"A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"}

    def test_label_lookup(self):
        assert get_fair_method("A3").name == "Fair-Borda"
        assert get_fair_method("b4").name == "Correct-Fairest-Perm"

    def test_name_lookup(self):
        assert get_fair_method("fair-schulze").name == "Fair-Schulze"

    def test_unknown_method_raises(self):
        with pytest.raises(AggregationError):
            get_fair_method("fair-bogus")

    def test_proposed_and_baseline_collections(self):
        assert set(proposed_methods()) == {"A1", "A2", "A3", "A4"}
        assert set(baseline_methods()) == {"B1", "B2", "B3", "B4"}

    def test_available_methods_all_instantiable(self):
        for name in available_fair_methods():
            assert get_fair_method(name).name
