"""Property tests for sharded Make-MR-Fair (:mod:`repro.fair.sharding`).

The contract is **bit-identity**: for every shard count, the sharded batch
equals the serial ``[make_mr_fair(r, ...) for r in rankings]`` loop
element-wise — same repaired orders, same swap counts, same corrected
entities, in input order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.exceptions import ValidationError
from repro.fair.make_mr_fair import make_mr_fair
from repro.fair.sharding import default_shard_count, make_mr_fair_sharded


@pytest.fixture(scope="module")
def table() -> CandidateTable:
    return CandidateTable(
        {
            "Gender": ["M", "M", "W", "W", "M", "M", "W", "W"],
            "Race": ["A", "B", "A", "B", "A", "B", "A", "B"],
        }
    )


def _random_batch(seed: int, size: int, n: int = 8) -> list[Ranking]:
    rng = np.random.default_rng(seed)
    return [Ranking(rng.permutation(n).tolist()) for _ in range(size)]


def _flat(results) -> list[tuple]:
    return [
        (r.ranking.to_list(), r.n_swaps, tuple(r.corrected_entities), r.converged)
        for r in results
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    def test_sharded_equals_serial(self, table, seed, n_shards):
        batch = _random_batch(seed, size=7)
        serial = [make_mr_fair(r, table, 0.2) for r in batch]
        sharded = make_mr_fair_sharded(batch, table, 0.2, n_shards=n_shards)
        assert _flat(sharded) == _flat(serial)

    def test_default_shard_count_path(self, table):
        batch = _random_batch(seed=7, size=5)
        serial = [make_mr_fair(r, table, 0.2) for r in batch]
        assert _flat(make_mr_fair_sharded(batch, table, 0.2)) == _flat(serial)

    def test_more_shards_than_rankings_clamped(self, table):
        batch = _random_batch(seed=8, size=2)
        serial = [make_mr_fair(r, table, 0.2) for r in batch]
        sharded = make_mr_fair_sharded(batch, table, 0.2, n_shards=16)
        assert _flat(sharded) == _flat(serial)

    def test_max_swaps_forwarded(self, table):
        batch = _random_batch(seed=9, size=4)
        serial = [make_mr_fair(r, table, 0.2, max_swaps=64) for r in batch]
        sharded = make_mr_fair_sharded(batch, table, 0.2, max_swaps=64, n_shards=2)
        assert _flat(sharded) == _flat(serial)

    def test_exhausted_swap_budget_raises_from_workers(self, table):
        from repro.exceptions import AggregationError

        batch = _random_batch(seed=9, size=4)
        with pytest.raises(AggregationError, match="did not reach delta"):
            make_mr_fair_sharded(batch, table, 0.05, max_swaps=1, n_shards=2)


class TestValidation:
    def test_empty_batch(self, table):
        assert make_mr_fair_sharded([], table, 0.2) == []

    def test_non_ranking_item_rejected(self, table):
        with pytest.raises(ValidationError, match="item 1"):
            make_mr_fair_sharded([Ranking(range(8)), [0, 1]], table, 0.2)

    def test_bad_shard_count_rejected(self, table):
        with pytest.raises(ValidationError, match="n_shards"):
            make_mr_fair_sharded(_random_batch(0, 2), table, 0.2, n_shards=0)

    def test_unknown_backend_fails_fast(self, table):
        from repro.exceptions import KernelError

        with pytest.raises(KernelError):
            make_mr_fair_sharded(
                _random_batch(0, 2), table, 0.2, backend="no-such-backend"
            )


class TestDefaultShardCount:
    def test_bounded_by_rankings_and_positive(self):
        assert default_shard_count(0) == 1
        assert default_shard_count(1) == 1
        assert 1 <= default_shard_count(1000) <= 1000
