"""Tests for the Make-MR-Fair post-processing algorithm (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.exceptions import AggregationError
from repro.fair.make_mr_fair import make_mr_fair, make_mr_fair_reference
from repro.fairness.parity import mani_rank_satisfied, parity_scores
from repro.fairness.pd_loss import pd_loss
from repro.fairness.thresholds import FairnessThresholds


class TestBasicCorrection:
    def test_already_fair_ranking_is_unchanged(self, tiny_table):
        ranking = Ranking([0, 2, 4, 1, 5, 3])
        result = make_mr_fair(ranking, tiny_table, 1.0)
        assert result.ranking == ranking
        assert result.n_swaps == 0
        assert result.converged

    def test_biased_ranking_is_corrected(self, tiny_table, biased_ranking_for_tiny_table):
        result = make_mr_fair(biased_ranking_for_tiny_table, tiny_table, 0.35)
        assert mani_rank_satisfied(result.ranking, tiny_table, 0.35)
        assert result.n_swaps > 0

    def test_output_is_still_a_permutation(self, tiny_table, biased_ranking_for_tiny_table):
        result = make_mr_fair(biased_ranking_for_tiny_table, tiny_table, 0.35)
        assert sorted(result.ranking.to_list()) == list(range(6))

    def test_input_ranking_not_mutated(self, tiny_table, biased_ranking_for_tiny_table):
        original = biased_ranking_for_tiny_table.to_list()
        make_mr_fair(biased_ranking_for_tiny_table, tiny_table, 0.35)
        assert biased_ranking_for_tiny_table.to_list() == original

    def test_corrected_entities_recorded(self, tiny_table, biased_ranking_for_tiny_table):
        result = make_mr_fair(biased_ranking_for_tiny_table, tiny_table, 0.35)
        assert len(result.corrected_entities) == result.n_swaps
        assert set(result.corrected_entities) <= set(tiny_table.all_fairness_entities())

    def test_universe_mismatch_rejected(self, tiny_table):
        with pytest.raises(AggregationError):
            make_mr_fair(Ranking([0, 1]), tiny_table, 0.1)

    def test_per_entity_thresholds_respected(self, tiny_table, biased_ranking_for_tiny_table):
        thresholds = FairnessThresholds(1.0, {"Gender": 0.4})
        result = make_mr_fair(biased_ranking_for_tiny_table, tiny_table, thresholds)
        scores = parity_scores(result.ranking, tiny_table)
        assert scores["Gender"] <= 0.4 + 1e-9
        # Unconstrained entities may stay unfair.
        assert result.converged


class TestIncrementalReferenceEquivalence:
    """The incremental engine must replay the reference's exact swap sequence."""

    def _assert_identical(self, ranking, table, delta):
        try:
            reference = make_mr_fair_reference(ranking, table, delta)
            reference_error = None
        except AggregationError as error:
            reference, reference_error = None, str(error)
        try:
            fast = make_mr_fair(ranking, table, delta)
            fast_error = None
        except AggregationError as error:
            fast, fast_error = None, str(error)
        assert fast_error == reference_error
        if reference is not None:
            assert fast.ranking == reference.ranking
            assert fast.n_swaps == reference.n_swaps
            assert fast.corrected_entities == reference.corrected_entities
            assert fast.converged == reference.converged

    def test_identical_on_tiny_table(self, tiny_table, biased_ranking_for_tiny_table):
        for delta in (0.1, 0.35, 0.6):
            self._assert_identical(biased_ranking_for_tiny_table, tiny_table, delta)

    def test_identical_on_small_mallows_dataset(self, small_dataset):
        from repro.aggregation.borda import BordaAggregator

        seed = BordaAggregator().aggregate(small_dataset.rankings)
        for delta in (0.1, 0.3):
            self._assert_identical(seed, small_dataset.table, delta)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_on_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 24))
        values = [["x", "y"][int(v)] for v in rng.integers(0, 2, n - 2)] + ["x", "y"]
        rng.shuffle(values)
        table = CandidateTable(
            {"A": values, "B": [["u", "v"][i % 2] for i in range(n)]}
        )
        ranking = Ranking.random(n, rng)
        delta = float(rng.choice([0.15, 0.3, 0.5]))
        self._assert_identical(ranking, table, delta)


class TestConvergenceProperties:
    def test_stricter_delta_costs_more_pd_loss(self, small_dataset):
        from repro.aggregation.borda import BordaAggregator

        seed = BordaAggregator().aggregate(small_dataset.rankings)
        losses = {}
        for delta in (0.5, 0.3, 0.1):
            corrected = make_mr_fair(seed, small_dataset.table, delta)
            losses[delta] = pd_loss(small_dataset.rankings, corrected.ranking)
        # The greedy correction is not provably monotone swap-by-swap, but a
        # clearly stricter threshold must not come out clearly cheaper.
        assert losses[0.5] <= losses[0.1] + 0.02

    def test_swap_budget_exhaustion_raises(self, tiny_table, biased_ranking_for_tiny_table):
        with pytest.raises(AggregationError):
            make_mr_fair(biased_ranking_for_tiny_table, tiny_table, 0.05, max_swaps=1)

    def test_infeasible_singleton_intersection_raises(self):
        table = CandidateTable({"A": ["x", "x", "y", "y"], "B": ["u", "v", "u", "v"]})
        # All intersectional groups are singletons -> IRP is always 1.
        with pytest.raises(AggregationError):
            make_mr_fair(Ranking([0, 1, 2, 3]), table, 0.5)

    def test_unbalanced_groups_converge(self, rng):
        values = ["a"] * 12 + ["b"] * 3 + ["c"] * 5
        rng.shuffle(values)
        table = CandidateTable({"X": values})
        for seed in range(3):
            ranking = Ranking.random(20, np.random.default_rng(seed))
            result = make_mr_fair(ranking, table, 0.15)
            assert mani_rank_satisfied(result.ranking, table, 0.15)

    @given(st.permutations(list(range(12))), st.sampled_from([0.15, 0.3, 0.5]))
    @settings(max_examples=30, deadline=None)
    def test_correction_reaches_threshold_on_balanced_table(self, order, delta):
        table = CandidateTable(
            {
                "Gender": ["M", "W"] * 6,
                "Race": ["A", "A", "B", "B", "C", "C"] * 2,
            }
        )
        result = make_mr_fair(Ranking(list(order)), table, delta)
        assert mani_rank_satisfied(result.ranking, table, delta)

    def test_three_attribute_table(self, rng):
        table = CandidateTable(
            {
                "Gender": ["M", "W"] * 8,
                "Race": (["A"] * 4 + ["B"] * 4) * 2,
                "Age": ["young"] * 8 + ["old"] * 8,
            }
        )
        ranking = Ranking.random(16, rng)
        result = make_mr_fair(ranking, table, 0.25)
        assert mani_rank_satisfied(result.ranking, table, 0.25)
