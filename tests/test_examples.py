"""Smoke tests ensuring the example scripts run end to end.

Only the fast examples are executed directly; the two case-study examples
(200 students / 65 departments) are covered indirectly through the
``table4`` / ``table5`` experiment tests and the benchmark suite.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIRECTORY = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "custom_thresholds.py", "admissions_committee.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIRECTORY / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLES_DIRECTORY.glob("*.py")}
    assert {"quickstart.py", "admissions_committee.py", "merit_scholarships.py",
            "csrankings_consensus.py", "custom_thresholds.py"} <= names


def test_quickstart_reports_fair_and_unfair_methods(capsys):
    runpy.run_path(str(EXAMPLES_DIRECTORY / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "VIOLATED" in output       # plain Kemeny violates the threshold
    assert "Fair-Kemeny" in output
    assert output.count("ok") >= 4    # the fair methods satisfy every entity
