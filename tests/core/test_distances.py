"""Tests for rank distances (Kendall tau, footrule, Kemeny objective)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import (
    kemeny_objective,
    kendall_tau,
    kendall_tau_naive,
    kendall_tau_to_set,
    normalized_kendall_tau,
    normalized_spearman_footrule,
    spearman_footrule,
)
from repro.core.pairwise import total_pairs
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import RankingError

small_permutations = st.integers(min_value=1, max_value=12).flatmap(
    lambda n: st.tuples(st.permutations(list(range(n))), st.permutations(list(range(n))))
)


class TestKendallTau:
    def test_identical_rankings(self):
        ranking = Ranking([0, 2, 1, 3])
        assert kendall_tau(ranking, ranking) == 0

    def test_reversed_rankings_maximal(self):
        ranking = Ranking.identity(6)
        assert kendall_tau(ranking, ranking.reversed()) == total_pairs(6)

    def test_single_adjacent_swap(self):
        assert kendall_tau(Ranking([0, 1, 2]), Ranking([1, 0, 2])) == 1

    def test_known_value(self):
        # [0,1,2,3] vs [3,1,0,2]: disagreeing pairs (0,3), (1,3), (2,3), (0,1) -> 4
        assert kendall_tau(Ranking([0, 1, 2, 3]), Ranking([3, 1, 0, 2])) == 4

    def test_symmetry(self):
        first, second = Ranking([2, 0, 3, 1]), Ranking([1, 3, 0, 2])
        assert kendall_tau(first, second) == kendall_tau(second, first)

    def test_universe_mismatch(self):
        with pytest.raises(RankingError):
            kendall_tau(Ranking([0, 1]), Ranking([0, 1, 2]))

    def test_single_candidate(self):
        assert kendall_tau(Ranking([0]), Ranking([0])) == 0

    @given(small_permutations)
    @settings(max_examples=80, deadline=None)
    def test_fast_matches_naive(self, pair):
        first, second = Ranking(list(pair[0])), Ranking(list(pair[1]))
        assert kendall_tau(first, second) == kendall_tau_naive(first, second)

    @given(small_permutations)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, pair):
        first, second = Ranking(list(pair[0])), Ranking(list(pair[1]))
        identity = Ranking.identity(first.n_candidates)
        assert kendall_tau(first, second) <= kendall_tau(first, identity) + kendall_tau(
            identity, second
        )

    def test_normalized_range(self):
        first, second = Ranking([0, 1, 2, 3]), Ranking([3, 2, 1, 0])
        assert normalized_kendall_tau(first, second) == 1.0
        assert normalized_kendall_tau(first, first) == 0.0

    def test_normalized_single_candidate(self):
        assert normalized_kendall_tau(Ranking([0]), Ranking([0])) == 0.0


class TestFootrule:
    def test_identical(self):
        ranking = Ranking([1, 0, 2])
        assert spearman_footrule(ranking, ranking) == 0

    def test_known_value(self):
        assert spearman_footrule(Ranking([0, 1, 2]), Ranking([2, 1, 0])) == 4

    def test_normalized_reversal_is_one(self):
        ranking = Ranking.identity(6)
        assert normalized_spearman_footrule(ranking, ranking.reversed()) == 1.0

    def test_normalized_single_candidate(self):
        assert normalized_spearman_footrule(Ranking([0]), Ranking([0])) == 0.0

    @given(small_permutations)
    @settings(max_examples=60, deadline=None)
    def test_diaconis_graham_inequality(self, pair):
        """Kendall tau <= footrule <= 2 * Kendall tau (Diaconis & Graham)."""
        first, second = Ranking(list(pair[0])), Ranking(list(pair[1]))
        tau = kendall_tau(first, second)
        footrule = spearman_footrule(first, second)
        assert tau <= footrule <= 2 * tau


class TestSetDistances:
    def test_kendall_tau_to_set(self, tiny_rankings):
        consensus = tiny_rankings[0]
        expected = sum(kendall_tau(consensus, base) for base in tiny_rankings)
        assert kendall_tau_to_set(consensus, tiny_rankings) == expected

    def test_kemeny_objective_matches_sum_of_distances(self, tiny_rankings):
        consensus = Ranking([0, 1, 2, 3, 4, 5])
        assert kemeny_objective(consensus, tiny_rankings) == kendall_tau_to_set(
            consensus, tiny_rankings
        )

    def test_weighted_distance(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[2.0, 1.0])
        consensus = Ranking([0, 1])
        assert kendall_tau_to_set(consensus, rankings, weighted=True) == 1.0

    def test_universe_mismatch(self, tiny_rankings):
        with pytest.raises(RankingError):
            kendall_tau_to_set(Ranking([0, 1]), tiny_rankings)
        with pytest.raises(RankingError):
            kemeny_objective(Ranking([0, 1]), tiny_rankings)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_batched_set_distance_matches_per_ranking_merge_sort(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        m = int(rng.integers(1, 12))
        rankings = RankingSet([Ranking.random(n, rng) for _ in range(m)])
        consensus = Ranking.random(n, rng)
        batched = rankings.kendall_tau_vector(consensus)
        expected = [kendall_tau(consensus, base) for base in rankings]
        assert batched.tolist() == expected
        assert kendall_tau_to_set(consensus, rankings) == sum(expected)

    def test_weighted_set_distance_matches_manual_accumulation(self, rng):
        rankings = RankingSet(
            [Ranking.random(7, rng) for _ in range(5)],
            weights=[0.5, 2.0, 1.0, 0.25, 3.0],
        )
        consensus = Ranking.random(7, rng)
        expected = float(
            sum(
                weight * kendall_tau(consensus, base)
                for base, weight in zip(rankings, rankings.weights)
            )
        )
        assert kendall_tau_to_set(consensus, rankings, weighted=True) == expected


class TestInversionKernels:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_broadcast_matches_merge_sort(self, seed):
        from repro.core.distances import _count_inversions, _count_inversions_mergesort

        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 60))
        sequence = rng.integers(0, 20, n)
        assert _count_inversions(sequence) == _count_inversions_mergesort(sequence)

    def test_merge_sort_path_beyond_broadcast_limit(self):
        from repro.core.distances import (
            _INVERSION_BROADCAST_LIMIT,
            _count_inversions,
            _count_inversions_mergesort,
        )

        rng = np.random.default_rng(3)
        sequence = rng.permutation(_INVERSION_BROADCAST_LIMIT + 5)
        assert _count_inversions(sequence) == _count_inversions_mergesort(sequence)
