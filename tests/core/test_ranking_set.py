"""Tests for the RankingSet (base rankings) container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import RankingError, ValidationError


class TestConstruction:
    def test_basic(self, tiny_rankings):
        assert tiny_rankings.n_rankings == 3
        assert tiny_rankings.n_candidates == 6
        assert len(tiny_rankings) == 3

    def test_default_labels(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]])
        assert rankings.labels == ("r1", "r2")

    def test_explicit_labels(self, tiny_rankings):
        assert tiny_rankings.labels == ("r1", "r2", "r3")
        assert tiny_rankings.label_of(2) == "r3"

    def test_empty_rejected(self):
        with pytest.raises(RankingError):
            RankingSet([])

    def test_mixed_universe_rejected(self):
        with pytest.raises(RankingError):
            RankingSet([Ranking([0, 1]), Ranking([0, 1, 2])])

    def test_non_ranking_item_rejected(self):
        with pytest.raises(RankingError):
            RankingSet([[0, 1]])  # type: ignore[list-item]

    def test_label_count_mismatch(self):
        with pytest.raises(ValidationError):
            RankingSet([Ranking([0, 1])], labels=["a", "b"])

    def test_weight_validation(self):
        ranking = Ranking([0, 1])
        with pytest.raises(ValidationError):
            RankingSet([ranking], weights=[-1.0])
        with pytest.raises(ValidationError):
            RankingSet([ranking], weights=[0.0])
        with pytest.raises(ValidationError):
            RankingSet([ranking], weights=[1.0, 2.0])

    def test_from_score_columns(self):
        rankings = RankingSet.from_score_columns(
            {"math": [1.0, 3.0, 2.0], "reading": [3.0, 2.0, 1.0]}
        )
        assert rankings.labels == ("math", "reading")
        assert rankings[0].to_list() == [1, 2, 0]
        assert rankings[1].to_list() == [0, 1, 2]

    def test_iteration_and_indexing(self, tiny_rankings):
        assert list(tiny_rankings)[0] == tiny_rankings[0]


class TestPrecedenceMatrix:
    def test_precedence_counts(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [0, 2, 1], [1, 0, 2]])
        precedence = rankings.precedence_matrix()
        # W[a, b] = number of rankings where b precedes a.
        assert precedence[1, 0] == 2  # 0 above 1 in two rankings
        assert precedence[0, 1] == 1
        assert precedence[2, 0] == 3
        assert precedence[0, 2] == 0
        assert np.all(np.diag(precedence) == 0)

    def test_precedence_pairs_sum_to_ranking_count(self, tiny_rankings):
        precedence = tiny_rankings.precedence_matrix()
        n = tiny_rankings.n_candidates
        for a in range(n):
            for b in range(a + 1, n):
                assert precedence[a, b] + precedence[b, a] == tiny_rankings.n_rankings

    def test_precedence_matrix_is_cached(self, tiny_rankings):
        assert tiny_rankings.precedence_matrix() is tiny_rankings.precedence_matrix()

    def test_weighted_precedence(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[3.0, 1.0])
        weighted = rankings.precedence_matrix(weighted=True)
        assert weighted[1, 0] == 3.0
        assert weighted[0, 1] == 1.0

    def test_weighted_precedence_matrix_is_cached(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[3.0, 1.0])
        assert rankings.precedence_matrix(weighted=True) is rankings.precedence_matrix(
            weighted=True
        )

    def test_weighted_precedence_read_only(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]], weights=[3.0, 1.0])
        with pytest.raises(ValueError):
            rankings.precedence_matrix(weighted=True)[0, 1] = 9.0

    def test_unit_weights_cached_and_read_only(self, tiny_rankings):
        unit = tiny_rankings.unit_weights
        assert unit is tiny_rankings.unit_weights
        assert unit.tolist() == [1.0] * tiny_rankings.n_rankings
        with pytest.raises(ValueError):
            unit[0] = 2.0

    def test_chunked_broadcast_matches_per_ranking_accumulation(self, rng):
        weights = rng.uniform(0.1, 3.0, 8)
        rankings = RankingSet(
            [Ranking.random(9, rng) for _ in range(8)], weights=weights
        )
        # Force multiple chunks so the chunk boundary logic is exercised.
        rankings._CHUNK_BYTE_BUDGET = 9 * 9 * 3
        for weighted in (False, True):
            matrix = rankings.precedence_matrix(weighted=weighted)
            expected = np.zeros((9, 9))
            used = weights if weighted else np.ones(8)
            for ranking, weight in zip(rankings, used):
                positions = ranking.positions
                expected += weight * (
                    positions[np.newaxis, :] < positions[:, np.newaxis]
                )
            np.fill_diagonal(expected, 0.0)
            assert np.allclose(matrix, expected)

    def test_pairwise_support_is_transpose(self, tiny_rankings):
        support = tiny_rankings.pairwise_support()
        assert np.array_equal(support, tiny_rankings.precedence_matrix().T)

    def test_precedence_read_only(self, tiny_rankings):
        with pytest.raises(ValueError):
            tiny_rankings.precedence_matrix()[0, 0] = 1.0

    def test_margin_matrix_is_antisymmetric_difference(self, tiny_rankings):
        margin = tiny_rankings.margin_matrix()
        precedence = tiny_rankings.precedence_matrix()
        assert np.array_equal(margin, precedence - precedence.T)
        assert np.array_equal(margin, -margin.T)

    def test_margin_matrix_is_cached_and_read_only(self, tiny_rankings):
        assert tiny_rankings.margin_matrix() is tiny_rankings.margin_matrix()
        with pytest.raises(ValueError):
            tiny_rankings.margin_matrix()[0, 1] = 1.0

    def test_weighted_margin_matrix(self, tiny_rankings):
        weighted = tiny_rankings.with_weights([0.5, 2.0, 1.25])
        margin = weighted.margin_matrix(weighted=True)
        precedence = weighted.precedence_matrix(weighted=True)
        assert np.array_equal(margin, precedence - precedence.T)
        assert margin is weighted.margin_matrix(weighted=True)
        assert margin is not weighted.margin_matrix()


class TestPositions:
    def test_position_matrix_shape(self, tiny_rankings):
        matrix = tiny_rankings.position_matrix()
        assert matrix.shape == (3, 6)

    def test_mean_positions(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]])
        assert rankings.mean_positions().tolist() == [0.5, 0.5]


class TestManipulation:
    def test_with_weights(self, tiny_rankings):
        weighted = tiny_rankings.with_weights([1.0, 2.0, 3.0])
        assert weighted.weights.tolist() == [1.0, 2.0, 3.0]
        assert tiny_rankings.weights.tolist() == [1.0, 1.0, 1.0]

    def test_subset(self, tiny_rankings):
        subset = tiny_rankings.subset([0, 2])
        assert subset.n_rankings == 2
        assert subset.labels == ("r1", "r3")

    def test_subset_empty_rejected(self, tiny_rankings):
        with pytest.raises(RankingError):
            tiny_rankings.subset([])

    def test_extended_with(self, tiny_rankings):
        extra = Ranking([5, 4, 3, 2, 1, 0])
        extended = tiny_rankings.extended_with([extra], labels=["reverse"])
        assert extended.n_rankings == 4
        assert extended.labels[-1] == "reverse"

    def test_extended_with_default_labels(self, tiny_rankings):
        extended = tiny_rankings.extended_with([Ranking([0, 1, 2, 3, 4, 5])])
        assert extended.labels[-1] == "r4"

    def test_to_order_lists(self, tiny_rankings):
        orders = tiny_rankings.to_order_lists()
        assert orders[0] == [0, 3, 5, 1, 2, 4]


class TestFromPositionMatrix:
    def test_round_trips_position_matrix(self, rng):
        orders = np.vstack([rng.permutation(7) for _ in range(5)])
        reference = RankingSet.from_orders(orders)
        rebuilt = RankingSet.from_position_matrix(reference.position_matrix())
        assert rebuilt.to_order_lists() == reference.to_order_lists()

    def test_position_cache_is_preseeded(self):
        positions = np.array([[0, 1, 2], [2, 0, 1]])
        ranking_set = RankingSet.from_position_matrix(positions)
        cached = ranking_set.position_matrix()
        assert np.array_equal(cached, positions)
        assert not cached.flags.writeable
        # The caller's array keeps its own flags: with the default copy=True
        # the cache is a decoupled copy, never an alias of the caller's array.
        assert positions.flags.writeable

    def test_member_rankings_are_consistent(self):
        positions = np.array([[1, 0, 2], [2, 1, 0]])
        ranking_set = RankingSet.from_position_matrix(positions)
        assert ranking_set[0].to_list() == [1, 0, 2]
        assert ranking_set[1].to_list() == [2, 1, 0]

    def test_labels_and_weights_forwarded(self):
        positions = np.array([[0, 1], [1, 0]])
        ranking_set = RankingSet.from_position_matrix(
            positions, labels=["a", "b"], weights=[1.0, 2.0]
        )
        assert ranking_set.labels == ("a", "b")
        assert ranking_set.weights.tolist() == [1.0, 2.0]

    def test_non_permutation_row_rejected(self):
        with pytest.raises(RankingError):
            RankingSet.from_position_matrix(np.array([[0, 1, 2], [0, 0, 2]]))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(RankingError):
            RankingSet.from_position_matrix(np.array([0, 1, 2]))

    def test_empty_matrix_rejected(self):
        with pytest.raises(RankingError):
            RankingSet.from_position_matrix(np.empty((0, 4), dtype=np.int64))

    def test_cache_is_decoupled_from_caller_mutation(self):
        positions = np.array([[0, 1, 2], [2, 0, 1]])
        ranking_set = RankingSet.from_position_matrix(positions)
        positions[0] = [2, 1, 0]
        assert ranking_set.position_matrix()[0].tolist() == [0, 1, 2]
        assert ranking_set[0].to_list() == [0, 1, 2]
