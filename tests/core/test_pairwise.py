"""Tests for the pairwise counting machinery (mixed pairs, favored pairs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairwise import (
    favored_mixed_pairs,
    favored_mixed_pairs_by_group,
    favored_mixed_pairs_by_group_naive,
    mixed_pairs,
    pairwise_contest_wins,
    total_mixed_pairs,
    total_pairs,
)
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import FairnessError


class TestCounts:
    def test_total_pairs(self):
        assert total_pairs(0) == 0
        assert total_pairs(1) == 0
        assert total_pairs(2) == 1
        assert total_pairs(10) == 45

    def test_total_pairs_negative(self):
        with pytest.raises(FairnessError):
            total_pairs(-1)

    def test_mixed_pairs(self):
        assert mixed_pairs(3, 10) == 21
        assert mixed_pairs(0, 10) == 0
        assert mixed_pairs(10, 10) == 0

    def test_mixed_pairs_invalid(self):
        with pytest.raises(FairnessError):
            mixed_pairs(5, 3)
        with pytest.raises(FairnessError):
            mixed_pairs(-1, 3)

    def test_total_mixed_pairs(self):
        # Two groups of sizes 2 and 3 over 5 candidates: 10 - 1 - 3 = 6.
        assert total_mixed_pairs([2, 3], 5) == 6

    def test_total_mixed_pairs_requires_partition(self):
        with pytest.raises(FairnessError):
            total_mixed_pairs([2, 2], 5)


class TestFavoredPairs:
    def test_group_at_top(self):
        ranking = Ranking([0, 1, 2, 3, 4])
        assert favored_mixed_pairs(ranking, [0, 1]) == mixed_pairs(2, 5)

    def test_group_at_bottom(self):
        ranking = Ranking([2, 3, 4, 0, 1])
        assert favored_mixed_pairs(ranking, [0, 1]) == 0

    def test_interleaved_group(self):
        ranking = Ranking([0, 2, 1, 3])
        # group {0, 1}: 0 beats 2 and 3 (2 favored); 1 beats 3 (1 favored).
        assert favored_mixed_pairs(ranking, [0, 1]) == 3

    def test_by_group_matches_single_group_computation(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        membership = tiny_table.group_membership_array("Gender")
        groups = tiny_table.groups("Gender")
        counts = favored_mixed_pairs_by_group(ranking, membership, len(groups))
        for index, group in enumerate(groups):
            assert counts[index] == favored_mixed_pairs(ranking, group.members)

    def test_by_group_counts_sum_to_cross_pairs(self, tiny_table):
        ranking = Ranking([5, 1, 0, 4, 2, 3])
        membership = tiny_table.group_membership_array("Race")
        groups = tiny_table.groups("Race")
        counts = favored_mixed_pairs_by_group(ranking, membership, len(groups))
        sizes = [group.size for group in groups]
        assert counts.sum() == total_mixed_pairs(sizes, tiny_table.n_candidates)

    @given(st.permutations(list(range(8))), st.sets(st.integers(0, 7), min_size=1, max_size=7))
    @settings(max_examples=60, deadline=None)
    def test_favored_pairs_bounded_by_mixed_pairs(self, order, members):
        ranking = Ranking(list(order))
        favored = favored_mixed_pairs(ranking, sorted(members))
        assert 0 <= favored <= mixed_pairs(len(members), 8)


class TestVectorisedKernelEquivalence:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_by_group_matches_naive_reference(self, seed, n, n_groups):
        rng = np.random.default_rng(seed)
        ranking = Ranking.random(n, rng)
        membership = rng.integers(0, n_groups, n).astype(np.int64)
        fast = favored_mixed_pairs_by_group(ranking, membership, n_groups)
        naive = favored_mixed_pairs_by_group_naive(ranking, membership, n_groups)
        assert np.array_equal(fast, naive)
        assert fast.dtype == naive.dtype

    def test_empty_group_gets_zero_count(self):
        ranking = Ranking([0, 1, 2])
        membership = np.array([0, 0, 2], dtype=np.int64)
        counts = favored_mixed_pairs_by_group(ranking, membership, 3)
        assert counts[1] == 0
        assert np.array_equal(
            counts, favored_mixed_pairs_by_group_naive(ranking, membership, 3)
        )


class TestContestWins:
    def test_unanimous_rankings(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 3)
        wins = pairwise_contest_wins(rankings)
        assert wins.tolist() == [2, 1, 0]

    def test_tie_counts_as_win_for_both(self):
        rankings = RankingSet.from_orders([[0, 1], [1, 0]])
        wins = pairwise_contest_wins(rankings)
        assert wins.tolist() == [1, 1]
