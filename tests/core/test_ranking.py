"""Tests for the Ranking data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import Ranking
from repro.exceptions import RankingError

permutations = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestConstruction:
    def test_valid_permutation(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.to_list() == [2, 0, 1]

    def test_identity(self):
        assert Ranking.identity(4).to_list() == [0, 1, 2, 3]

    def test_identity_requires_positive_n(self):
        with pytest.raises(RankingError):
            Ranking.identity(0)

    def test_empty_rejected(self):
        with pytest.raises(RankingError):
            Ranking([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(RankingError):
            Ranking([[0, 1], [1, 0]])

    def test_duplicate_candidate_rejected(self):
        with pytest.raises(RankingError):
            Ranking([0, 1, 1])

    def test_out_of_range_candidate_rejected(self):
        with pytest.raises(RankingError):
            Ranking([0, 1, 3])

    def test_negative_candidate_rejected(self):
        with pytest.raises(RankingError):
            Ranking([0, -1, 1])

    def test_from_scores_descending(self):
        ranking = Ranking.from_scores([10.0, 30.0, 20.0])
        assert ranking.to_list() == [1, 2, 0]

    def test_from_scores_ascending(self):
        ranking = Ranking.from_scores([10.0, 30.0, 20.0], descending=False)
        assert ranking.to_list() == [0, 2, 1]

    def test_from_scores_tie_breaks_by_candidate_id(self):
        ranking = Ranking.from_scores([5.0, 5.0, 5.0])
        assert ranking.to_list() == [0, 1, 2]

    def test_from_scores_rejects_nan(self):
        with pytest.raises(RankingError):
            Ranking.from_scores([1.0, float("nan")])

    def test_from_scores_rejects_empty(self):
        with pytest.raises(RankingError):
            Ranking.from_scores([])

    def test_from_positions(self):
        ranking = Ranking.from_positions([2, 0, 1])  # candidate 1 is best
        assert ranking.to_list() == [1, 2, 0]

    def test_from_positions_invalid(self):
        with pytest.raises(RankingError):
            Ranking.from_positions([0, 0, 1])

    def test_random_is_permutation(self, rng):
        ranking = Ranking.random(25, rng)
        assert sorted(ranking.to_list()) == list(range(25))


class TestAccessors:
    def test_positions_are_inverse_of_order(self):
        ranking = Ranking([3, 1, 0, 2])
        for position, candidate in enumerate(ranking):
            assert ranking.position_of(candidate) == position
            assert ranking.candidate_at(position) == candidate

    def test_rank_of_is_one_based(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking.rank_of(3) == 1
        assert ranking.rank_of(2) == 4

    def test_prefers(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking.prefers(3, 2)
        assert not ranking.prefers(2, 3)

    def test_top(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking.top(2).tolist() == [3, 1]

    def test_top_negative_raises(self):
        with pytest.raises(RankingError):
            Ranking([0, 1]).top(-1)

    def test_getitem(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking[0] == 3

    def test_order_is_read_only(self):
        ranking = Ranking([0, 1, 2])
        with pytest.raises(ValueError):
            ranking.order[0] = 5

    def test_pairs_enumeration(self):
        ranking = Ranking([2, 0, 1])
        assert list(ranking.pairs()) == [(2, 0), (2, 1), (0, 1)]

    def test_repr_small_and_large(self):
        assert "Ranking(" in repr(Ranking([0, 1, 2]))
        assert "..." in repr(Ranking.identity(20))


class TestTransformations:
    def test_swap_returns_new_ranking(self):
        ranking = Ranking([0, 1, 2, 3])
        swapped = ranking.swap(0, 3)
        assert swapped.to_list() == [3, 1, 2, 0]
        assert ranking.to_list() == [0, 1, 2, 3]

    def test_move_to_new_position(self):
        ranking = Ranking([0, 1, 2, 3])
        moved = ranking.move(3, 0)
        assert moved.to_list() == [3, 0, 1, 2]

    def test_move_out_of_range(self):
        with pytest.raises(RankingError):
            Ranking([0, 1]).move(0, 5)

    def test_reversed(self):
        assert Ranking([0, 1, 2]).reversed().to_list() == [2, 1, 0]

    def test_restricted_to_preserves_relative_order(self):
        ranking = Ranking([4, 2, 0, 3, 1])
        assert ranking.restricted_to([0, 1, 4]) == [4, 0, 1]


class TestEqualityAndHash:
    def test_equal_rankings(self):
        assert Ranking([0, 2, 1]) == Ranking(np.array([0, 2, 1]))

    def test_unequal_rankings(self):
        assert Ranking([0, 2, 1]) != Ranking([0, 1, 2])

    def test_not_equal_to_other_type(self):
        assert Ranking([0, 1]) != [0, 1]

    def test_hash_consistency(self):
        assert hash(Ranking([1, 0])) == hash(Ranking([1, 0]))
        assert len({Ranking([1, 0]), Ranking([1, 0]), Ranking([0, 1])}) == 2


class TestProperties:
    @given(permutations)
    @settings(max_examples=50, deadline=None)
    def test_positions_inverse_property(self, order):
        ranking = Ranking(order)
        reconstructed = Ranking.from_positions(ranking.positions)
        assert reconstructed == ranking

    @given(permutations)
    @settings(max_examples=50, deadline=None)
    def test_reverse_is_involution(self, order):
        ranking = Ranking(order)
        assert ranking.reversed().reversed() == ranking

    @given(permutations, st.data())
    @settings(max_examples=50, deadline=None)
    def test_swap_is_involution(self, order, data):
        ranking = Ranking(order)
        if ranking.n_candidates < 2:
            return
        first = data.draw(st.integers(0, ranking.n_candidates - 1))
        second = data.draw(st.integers(0, ranking.n_candidates - 1))
        if first == second:
            return
        assert ranking.swap(first, second).swap(first, second) == ranking
