"""Tests for the candidate / protected-attribute model."""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidateTable, Group, ProtectedAttribute, intersection_label
from repro.exceptions import AttributeDomainError, CandidateError, ValidationError


class TestProtectedAttribute:
    def test_cardinality(self):
        attribute = ProtectedAttribute("Gender", ("M", "F", "X"))
        assert attribute.cardinality == 3

    def test_index_of_known_value(self):
        attribute = ProtectedAttribute("Gender", ("M", "F"))
        assert attribute.index_of("F") == 1

    def test_index_of_unknown_value_raises(self):
        attribute = ProtectedAttribute("Gender", ("M", "F"))
        with pytest.raises(AttributeDomainError):
            attribute.index_of("X")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            ProtectedAttribute("", ("M", "F"))

    def test_single_value_domain_rejected(self):
        with pytest.raises(AttributeDomainError):
            ProtectedAttribute("Gender", ("M",))

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(AttributeDomainError):
            ProtectedAttribute("Gender", ("M", "M"))


class TestGroup:
    def test_size_and_membership(self):
        group = Group("Gender", "Woman", (1, 4, 5))
        assert group.size == 3
        assert 4 in group
        assert 2 not in group

    def test_label_for_attribute_group(self):
        group = Group("Gender", "Woman", (1,))
        assert group.label == "Gender=Woman"

    def test_label_for_intersection_group(self):
        group = Group(CandidateTable.INTERSECTION, ("Woman", "Black"), (1,))
        assert group.label == "Woman & Black"

    def test_intersection_label_helper(self):
        assert intersection_label(["A", 2]) == "A & 2"


class TestCandidateTableConstruction:
    def test_basic_construction(self, tiny_table):
        assert tiny_table.n_candidates == 6
        assert len(tiny_table) == 6
        assert tiny_table.attribute_names == ("Gender", "Race")

    def test_names_default_to_generated(self):
        table = CandidateTable({"Gender": ["M", "F"]})
        assert table.names == ("c0", "c1")

    def test_explicit_names(self, tiny_table):
        assert tiny_table.name_of(0) == "c0"
        assert tiny_table.id_of("c3") == 3

    def test_unknown_name_raises(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.id_of("nobody")

    def test_empty_attributes_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({})

    def test_zero_candidates_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({"Gender": []})

    def test_inconsistent_column_lengths_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({"Gender": ["M", "F"], "Race": ["A"]})

    def test_reserved_attribute_name_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({CandidateTable.INTERSECTION: ["x", "y"]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({"Gender": ["M", "F"]}, names=["a", "a"])

    def test_wrong_name_count_rejected(self):
        with pytest.raises(CandidateError):
            CandidateTable({"Gender": ["M", "F"]}, names=["a"])

    def test_declared_domain_must_cover_values(self):
        with pytest.raises(AttributeDomainError):
            CandidateTable({"Gender": ["M", "F", "X"]}, domains={"Gender": ("M", "F")})

    def test_declared_domain_preserves_extra_values(self):
        table = CandidateTable(
            {"Gender": ["M", "M", "F"]}, domains={"Gender": ("M", "F", "X")}
        )
        assert table.attribute("Gender").cardinality == 3
        # The X group is empty and therefore not returned.
        assert len(table.groups("Gender")) == 2

    def test_from_records(self):
        records = [
            {"name": "a", "Gender": "M", "Race": "A"},
            {"name": "b", "Gender": "F", "Race": "B"},
        ]
        table = CandidateTable.from_records(records, ["Gender", "Race"], name_field="name")
        assert table.n_candidates == 2
        assert table.name_of(1) == "b"

    def test_from_records_missing_attribute_raises(self):
        with pytest.raises(CandidateError):
            CandidateTable.from_records([{"Gender": "M"}], ["Gender", "Race"])

    def test_from_records_empty_raises(self):
        with pytest.raises(CandidateError):
            CandidateTable.from_records([], ["Gender"])

    def test_to_records_round_trip(self, tiny_table):
        records = tiny_table.to_records()
        rebuilt = CandidateTable.from_records(
            records, list(tiny_table.attribute_names), name_field="name"
        )
        assert rebuilt == tiny_table

    def test_equality_and_hash(self, tiny_table):
        clone = CandidateTable(
            {
                "Gender": list(tiny_table.column("Gender")),
                "Race": list(tiny_table.column("Race")),
            },
            names=list(tiny_table.names),
        )
        assert clone == tiny_table
        assert hash(clone) == hash(tiny_table)

    def test_inequality_with_other_types(self, tiny_table):
        assert tiny_table != "not a table"


class TestCandidateTableAccessors:
    def test_value_of(self, tiny_table):
        assert tiny_table.value_of(1, "Gender") == "Woman"
        assert tiny_table.value_of(1, "Race") == "A"

    def test_value_of_intersection(self, tiny_table):
        assert tiny_table.value_of(1, CandidateTable.INTERSECTION) == ("Woman", "A")

    def test_value_of_unknown_attribute_raises(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.value_of(1, "Age")

    def test_value_of_out_of_range_candidate(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.value_of(99, "Gender")

    def test_column(self, tiny_table):
        assert tiny_table.column("Race") == ("A", "A", "B", "B", "A", "B")

    def test_column_unknown_attribute(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.column("Age")

    def test_intersection_cardinality(self, tiny_table):
        assert tiny_table.intersection_cardinality == 4

    def test_attribute_lookup(self, tiny_table):
        assert tiny_table.attribute("Gender").domain == ("Man", "Woman")
        with pytest.raises(CandidateError):
            tiny_table.attribute("Age")


class TestGroupStructure:
    def test_attribute_groups_partition_candidates(self, tiny_table):
        groups = tiny_table.groups("Gender")
        members = sorted(m for group in groups for m in group.members)
        assert members == list(range(6))

    def test_group_lookup_by_value(self, tiny_table):
        women = tiny_table.group("Gender", "Woman")
        assert set(women.members) == {1, 2, 4}

    def test_group_lookup_unknown_value(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.group("Gender", "Other")

    def test_intersectional_groups_partition_candidates(self, tiny_table):
        groups = tiny_table.intersectional_groups()
        members = sorted(m for group in groups for m in group.members)
        assert members == list(range(6))
        assert len(groups) == 4

    def test_groups_via_intersection_keyword(self, tiny_table):
        assert tiny_table.groups(CandidateTable.INTERSECTION) == tiny_table.intersectional_groups()

    def test_groups_unknown_attribute(self, tiny_table):
        with pytest.raises(CandidateError):
            tiny_table.groups("Age")

    def test_all_fairness_entities_multi_attribute(self, tiny_table):
        assert tiny_table.all_fairness_entities() == (
            "Gender",
            "Race",
            CandidateTable.INTERSECTION,
        )

    def test_all_fairness_entities_single_attribute(self, single_attribute_table):
        assert single_attribute_table.all_fairness_entities() == ("Gender",)

    def test_group_membership_array(self, tiny_table):
        membership = tiny_table.group_membership_array("Gender")
        groups = tiny_table.groups("Gender")
        for index, group in enumerate(groups):
            for member in group.members:
                assert membership[member] == index

    def test_membership_array_intersection(self, tiny_table):
        membership = tiny_table.group_membership_array(CandidateTable.INTERSECTION)
        assert len(set(membership.tolist())) == 4
