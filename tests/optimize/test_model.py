"""Tests for the linear-ordering ILP model builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ranking import Ranking
from repro.exceptions import SolverError, ValidationError
from repro.optimize.model import LinearOrderingModel, PairVariableIndex


class TestPairVariableIndex:
    def test_variable_count(self):
        index = PairVariableIndex(5)
        assert index.n_variables == 10
        assert index.n_candidates == 5

    def test_minimum_two_candidates(self):
        with pytest.raises(ValidationError):
            PairVariableIndex(1)

    def test_forward_and_complement_lookup(self):
        index = PairVariableIndex(3)
        var_ab, sign_ab, offset_ab = index.variable(0, 2)
        var_ba, sign_ba, offset_ba = index.variable(2, 0)
        assert var_ab == var_ba
        assert (sign_ab, offset_ab) == (1.0, 0.0)
        assert (sign_ba, offset_ba) == (-1.0, 1.0)

    def test_diagonal_rejected(self):
        with pytest.raises(ValidationError):
            PairVariableIndex(3).variable(1, 1)

    def test_pairs_enumeration(self):
        assert PairVariableIndex(3).pairs == ((0, 1), (0, 2), (1, 2))


class TestModelConstruction:
    def test_from_precedence_objective(self):
        precedence = np.array([[0.0, 2.0], [1.0, 0.0]])
        model = LinearOrderingModel.from_precedence(precedence)
        # Reduced coefficient for x_01 is W[0,1] - W[1,0] = 1, constant W[1,0] = 1.
        assert model.objective.tolist() == [1.0]
        assert model.objective_constant == 1.0

    def test_from_precedence_requires_square(self):
        with pytest.raises(ValidationError):
            LinearOrderingModel.from_precedence(np.zeros((2, 3)))

    def test_objective_value_matches_kemeny_cost(self, tiny_rankings):
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        ranking = Ranking([0, 1, 2, 3, 4, 5])
        assignment = model.ranking_to_assignment(ranking)
        from repro.core.distances import kemeny_objective

        assert model.objective_value(assignment) == pytest.approx(
            kemeny_objective(ranking, tiny_rankings)
        )

    def test_ranking_assignment_round_trip(self, tiny_rankings):
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        ranking = Ranking([3, 0, 5, 1, 4, 2])
        assignment = model.ranking_to_assignment(ranking)
        assert model.assignment_to_ranking(assignment) == ranking

    def test_assignment_to_ranking_rejects_cycles(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        # 0 beats 1, 1 beats 2, 2 beats 0: a cycle.
        assignment = np.array([1.0, 0.0, 1.0])
        with pytest.raises(SolverError):
            model.assignment_to_ranking(assignment)

    def test_violated_triples_detects_cycle(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        cyclic = np.array([1.0, 0.0, 1.0])
        assert model.violated_triples(cyclic) == [(0, 1, 2)]

    def test_transitive_assignment_has_no_violations(self):
        model = LinearOrderingModel.from_precedence(np.zeros((4, 4)))
        assignment = model.ranking_to_assignment(Ranking([2, 0, 3, 1]))
        assert model.violated_triples(assignment) == []

    def test_all_triples_count(self):
        model = LinearOrderingModel.from_precedence(np.zeros((5, 5)))
        assert len(model.all_triples()) == 10

    def test_triangle_constraint_rows_shapes(self):
        model = LinearOrderingModel.from_precedence(np.zeros((4, 4)))
        triples = model.all_triples()
        rows, cols, values, upper = model.triangle_constraint_rows(triples)
        assert len(upper) == 2 * len(triples)
        assert rows.shape == cols.shape == values.shape


class TestConstraintsAndAuxiliaries:
    def test_add_constraint_with_complement_offset(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        # Y[1, 0] <= 0.4  becomes  -x_01 <= -0.6 after substitution.
        model.add_constraint({(1, 0): 1.0}, lower=-np.inf, upper=0.4)
        spec = model.extra_constraints[0]
        assert spec.upper == pytest.approx(-0.6)

    def test_add_auxiliary_variable_ids(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        first = model.add_auxiliary_variable(0.0, 1.0)
        second = model.add_auxiliary_variable(-1.0, 2.0)
        assert first == model.index.n_variables
        assert second == first + 1
        assert model.n_auxiliary == 2
        assert model.n_total_variables == model.index.n_variables + 2

    def test_constraint_with_unknown_auxiliary_rejected(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        with pytest.raises(ValidationError):
            model.add_constraint({}, lower=0, upper=1, auxiliary_coefficients={99: 1.0})

    def test_objective_ignores_auxiliary_suffix(self):
        model = LinearOrderingModel.from_precedence(np.zeros((3, 3)))
        model.add_auxiliary_variable()
        assignment = np.concatenate(
            [model.ranking_to_assignment(Ranking([0, 1, 2])), [0.7]]
        )
        assert model.objective_value(assignment) == pytest.approx(0.0)
