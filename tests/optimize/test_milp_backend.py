"""Tests for the HiGHS MILP backend (eager and lazy triangle generation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.optimize.milp_backend import solve_linear_ordering
from repro.optimize.model import LinearOrderingModel


def brute_force_kemeny(rankings: RankingSet) -> float:
    """Exact Kemeny objective by enumerating all permutations (tiny n only)."""
    from itertools import permutations

    best = float("inf")
    for order in permutations(range(rankings.n_candidates)):
        cost = kemeny_objective(Ranking(list(order)), rankings)
        best = min(best, cost)
    return best


class TestUnconstrainedSolve:
    @pytest.mark.parametrize("lazy", [True, False, None])
    def test_matches_brute_force(self, lazy):
        rankings = RankingSet.from_orders(
            [[0, 1, 2, 3, 4], [1, 0, 3, 2, 4], [0, 2, 1, 4, 3], [4, 1, 0, 2, 3]]
        )
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        solution = solve_linear_ordering(model, lazy=lazy)
        assert solution.optimal
        assert solution.objective == pytest.approx(brute_force_kemeny(rankings))
        ranking = model.assignment_to_ranking(solution.assignment)
        assert kemeny_objective(ranking, rankings) == pytest.approx(solution.objective)

    def test_unanimous_rankings_recovered_exactly(self):
        rankings = RankingSet.from_orders([[3, 1, 4, 0, 2]] * 5)
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        solution = solve_linear_ordering(model)
        ranking = model.assignment_to_ranking(solution.assignment)
        assert ranking == Ranking([3, 1, 4, 0, 2])

    def test_lazy_reports_rounds_and_constraints(self, tiny_rankings):
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        solution = solve_linear_ordering(model, lazy=True)
        assert solution.rounds >= 1
        assert solution.n_lazy_constraints >= 0

    def test_eager_counts_all_triangles(self, tiny_rankings):
        model = LinearOrderingModel.from_precedence(tiny_rankings.precedence_matrix())
        solution = solve_linear_ordering(model, lazy=False)
        assert solution.n_lazy_constraints == 2 * len(model.all_triples())


class TestConstrainedSolve:
    def test_extra_constraint_changes_solution(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 3)
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        # Force candidate 2 above candidate 0: Y[2, 0] = 1.
        model.add_constraint({(2, 0): 1.0}, lower=1.0, upper=1.0)
        solution = solve_linear_ordering(model, lazy=False)
        ranking = model.assignment_to_ranking(solution.assignment)
        assert ranking.prefers(2, 0)

    def test_infeasible_constraints_raise(self):
        rankings = RankingSet.from_orders([[0, 1, 2]] * 2)
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        model.add_constraint({(0, 1): 1.0}, lower=1.0, upper=1.0)
        model.add_constraint({(1, 0): 1.0}, lower=1.0, upper=1.0)
        with pytest.raises(InfeasibleProblemError):
            solve_linear_ordering(model, lazy=False)

    def test_auxiliary_variable_constraint(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [2, 1, 0]])
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        aux = model.add_auxiliary_variable(0.0, 1.0)
        # aux >= Y[0, 1] and aux <= 0.0 forces Y[0, 1] = 0 (candidate 1 above 0).
        model.add_constraint({(0, 1): 1.0}, lower=-np.inf, upper=0.0, auxiliary_coefficients={aux: -1.0})
        model.add_constraint({}, lower=-np.inf, upper=0.0, auxiliary_coefficients={aux: 1.0})
        solution = solve_linear_ordering(model, lazy=False)
        ranking = model.assignment_to_ranking(solution.assignment)
        assert ranking.prefers(1, 0)

    def test_max_rounds_exhaustion_raises(self):
        rankings = RankingSet.from_orders([[0, 1, 2], [1, 2, 0], [2, 0, 1]])
        model = LinearOrderingModel.from_precedence(rankings.precedence_matrix())
        # A Condorcet cycle needs at least one cutting-plane round; forbid any.
        with pytest.raises(SolverError):
            solve_linear_ordering(model, lazy=True, max_rounds=0)
