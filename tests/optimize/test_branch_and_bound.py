"""Tests for the pure-Python branch-and-bound Kemeny solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import ValidationError
from repro.optimize.branch_and_bound import MAX_CANDIDATES, branch_and_bound_kemeny
from repro.optimize.milp_backend import solve_linear_ordering
from repro.optimize.model import LinearOrderingModel


class TestBranchAndBound:
    def test_single_candidate(self):
        ranking, cost = branch_and_bound_kemeny([[0.0]])
        assert ranking.to_list() == [0]
        assert cost == 0.0

    def test_unanimous_rankings(self):
        rankings = RankingSet.from_orders([[2, 0, 1]] * 4)
        ranking, cost = branch_and_bound_kemeny(rankings.precedence_matrix())
        assert ranking == Ranking([2, 0, 1])
        assert cost == 0.0

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValidationError):
            branch_and_bound_kemeny([[0.0, 1.0]])

    def test_rejects_oversized_instances(self):
        import numpy as np

        n = MAX_CANDIDATES + 1
        with pytest.raises(ValidationError):
            branch_and_bound_kemeny(np.zeros((n, n)))

    def test_warm_start_does_not_change_optimum(self, tiny_rankings):
        precedence = tiny_rankings.precedence_matrix()
        cold_ranking, cold_cost = branch_and_bound_kemeny(precedence)
        warm_ranking, warm_cost = branch_and_bound_kemeny(
            precedence,
            initial_upper_bound=kemeny_objective(Ranking.identity(6), tiny_rankings),
            initial_ranking=Ranking.identity(6),
        )
        assert cold_cost == warm_cost
        assert kemeny_objective(warm_ranking, tiny_rankings) == warm_cost

    @given(st.lists(st.permutations(list(range(6))), min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_matches_milp_backend(self, orders):
        rankings = RankingSet.from_orders(orders)
        precedence = rankings.precedence_matrix()
        _, bb_cost = branch_and_bound_kemeny(precedence)
        model = LinearOrderingModel.from_precedence(precedence)
        milp_solution = solve_linear_ordering(model, lazy=False)
        assert bb_cost == pytest.approx(milp_solution.objective)
