"""Tier-1 guard on the documentation: links resolve, examples actually run.

Loads ``docs/check_docs.py`` (a standalone script, not a package module) and
runs its checks in-process: the README's ```console examples dispatch through
``repro.cli.main`` instead of spawning the installed binary, so the suite
stays subprocess-free while CI's ``docs`` job runs the same script verbatim.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "docs" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_readme_exists_with_core_sections():
    text = (REPO_ROOT / "README.md").read_text()
    assert "pip install -e .[dev]" in text
    assert "python -m pytest -x -q" in text  # the tier-1 verify command
    assert "mani-rank serve" in text


def test_all_relative_links_resolve(check_docs):
    assert check_docs.check_links() == []


def test_readme_documents_every_registered_method(check_docs):
    assert check_docs.check_method_table() == []


def test_console_examples_run_in_process(check_docs):
    """Every ``$ mani-rank ...`` command in the docs runs and exits 0."""
    commands = check_docs.console_commands()
    assert commands, "no documented console commands found"

    def runner(command: str) -> int:
        import shlex

        argv = shlex.split(command)
        assert argv[0] == "mani-rank", f"undocumented binary: {command}"
        return main(argv[1:])

    assert check_docs.check_console_blocks(runner=runner) == []
