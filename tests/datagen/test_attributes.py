"""Tests for the candidate-table generators."""

from __future__ import annotations

import pytest

from repro.datagen.attributes import (
    GENDER_DOMAIN,
    RACE_DOMAIN,
    balanced_candidate_table,
    paper_mallows_table,
    proportional_candidate_table,
    scalability_table,
    small_mallows_table,
)
from repro.exceptions import DataGenerationError


class TestBalancedTable:
    def test_group_sizes_exact(self):
        table = balanced_candidate_table({"A": ("x", "y"), "B": ("u", "v", "w")}, 4)
        assert table.n_candidates == 24
        for group in table.intersectional_groups():
            assert group.size == 4

    def test_zero_group_size_rejected(self):
        with pytest.raises(DataGenerationError):
            balanced_candidate_table({"A": ("x", "y")}, 0)

    def test_empty_domains_rejected(self):
        with pytest.raises(DataGenerationError):
            balanced_candidate_table({}, 3)

    def test_paper_table_dimensions(self):
        table = paper_mallows_table()
        assert table.n_candidates == 90
        assert table.attribute("Gender").domain == GENDER_DOMAIN
        assert table.attribute("Race").domain == RACE_DOMAIN
        assert len(table.intersectional_groups()) == 15

    def test_small_table_dimensions(self):
        table = small_mallows_table()
        assert table.n_candidates == 12
        assert len(table.intersectional_groups()) == 6


class TestProportionalTable:
    def test_every_group_nonempty(self, rng):
        table = proportional_candidate_table(
            30, {"Gender": ("M", "W"), "Race": ("A", "B", "C")}, rng=rng
        )
        assert table.n_candidates == 30
        for attribute in table.attribute_names:
            assert len(table.groups(attribute)) == len(table.attribute(attribute).domain)

    def test_proportions_respected_roughly(self, rng):
        table = proportional_candidate_table(
            400,
            {"X": ("a", "b")},
            proportions={"X": (0.9, 0.1)},
            rng=rng,
        )
        group_a = table.group("X", "a")
        assert group_a.size > 300

    def test_rejects_more_values_than_candidates(self, rng):
        with pytest.raises(DataGenerationError):
            proportional_candidate_table(2, {"X": ("a", "b", "c")}, rng=rng)

    def test_rejects_bad_proportions(self, rng):
        with pytest.raises(DataGenerationError):
            proportional_candidate_table(
                10, {"X": ("a", "b")}, proportions={"X": (0.9, 0.5)}, rng=rng
            )
        with pytest.raises(DataGenerationError):
            proportional_candidate_table(
                10, {"X": ("a", "b")}, proportions={"X": (1.0,)}, rng=rng
            )

    def test_rejects_zero_candidates(self):
        with pytest.raises(DataGenerationError):
            proportional_candidate_table(0, {"X": ("a", "b")})

    def test_seed_reproducibility(self):
        first = proportional_candidate_table(20, {"X": ("a", "b")}, rng=3)
        second = proportional_candidate_table(20, {"X": ("a", "b")}, rng=3)
        assert first == second

    def test_scalability_table_binary_attributes(self):
        table = scalability_table(50)
        assert table.n_candidates == 50
        assert table.attribute("Gender").cardinality == 2
        assert table.attribute("Race").cardinality == 2
