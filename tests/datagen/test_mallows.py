"""Tests for the Mallows model sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import kendall_tau
from repro.core.ranking import Ranking
from repro.datagen.mallows import (
    expected_kendall_distance,
    mallows_normalization,
    sample_mallows,
    sample_mallows_ranking,
)
from repro.exceptions import DataGenerationError


class TestSampling:
    def test_samples_are_permutations(self, rng):
        modal = Ranking.identity(15)
        rankings = sample_mallows(modal, theta=0.5, n_rankings=20, rng=rng)
        assert rankings.n_rankings == 20
        for ranking in rankings:
            assert sorted(ranking.to_list()) == list(range(15))

    def test_large_theta_concentrates_on_modal(self, rng):
        modal = Ranking([4, 2, 0, 3, 1])
        for _ in range(10):
            sample = sample_mallows_ranking(modal, theta=50.0, rng=rng)
            assert sample == modal

    def test_zero_theta_is_dispersed(self, rng):
        modal = Ranking.identity(8)
        rankings = sample_mallows(modal, theta=0.0, n_rankings=200, rng=rng)
        mean_distance = np.mean([kendall_tau(modal, r) for r in rankings])
        # Uniform permutations average n(n-1)/4 = 14 inversions.
        assert mean_distance == pytest.approx(14.0, rel=0.15)

    def test_higher_theta_means_smaller_distance(self, rng):
        modal = Ranking.identity(12)
        loose = sample_mallows(modal, theta=0.2, n_rankings=100, rng=rng)
        tight = sample_mallows(modal, theta=1.5, n_rankings=100, rng=rng)
        loose_mean = np.mean([kendall_tau(modal, r) for r in loose])
        tight_mean = np.mean([kendall_tau(modal, r) for r in tight])
        assert tight_mean < loose_mean

    def test_mean_distance_matches_closed_form(self, rng):
        modal = Ranking.identity(10)
        theta = 0.7
        rankings = sample_mallows(modal, theta, n_rankings=600, rng=rng)
        empirical = np.mean([kendall_tau(modal, r) for r in rankings])
        assert empirical == pytest.approx(expected_kendall_distance(10, theta), rel=0.1)

    def test_seed_reproducibility(self):
        modal = Ranking.identity(10)
        first = sample_mallows(modal, 0.5, 5, rng=42)
        second = sample_mallows(modal, 0.5, 5, rng=42)
        assert first.to_order_lists() == second.to_order_lists()

    def test_negative_theta_rejected(self, rng):
        with pytest.raises(DataGenerationError):
            sample_mallows_ranking(Ranking.identity(4), theta=-0.1, rng=rng)

    def test_zero_rankings_rejected(self):
        with pytest.raises(DataGenerationError):
            sample_mallows(Ranking.identity(4), 0.5, 0)

    def test_labels_generated(self):
        rankings = sample_mallows(Ranking.identity(4), 0.5, 3, rng=0)
        assert rankings.labels == ("mallows-1", "mallows-2", "mallows-3")


class TestClosedForms:
    def test_expected_distance_zero_theta(self):
        assert expected_kendall_distance(8, 0.0) == pytest.approx(14.0)

    def test_expected_distance_decreases_with_theta(self):
        values = [expected_kendall_distance(20, theta) for theta in (0.1, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_expected_distance_negative_theta_rejected(self):
        with pytest.raises(DataGenerationError):
            expected_kendall_distance(5, -1.0)

    def test_normalization_zero_theta_is_factorial(self):
        assert mallows_normalization(5, 0.0) == pytest.approx(120.0)

    def test_normalization_positive_theta(self):
        # psi(theta) = prod_i (1 - e^{-i theta}) / (1 - e^{-theta})
        value = mallows_normalization(3, 1.0)
        import math

        expected = 1.0 * (1 - math.exp(-2)) / (1 - math.exp(-1)) * (1 - math.exp(-3)) / (
            1 - math.exp(-1)
        )
        assert value == pytest.approx(expected)

    def test_normalization_negative_theta_rejected(self):
        with pytest.raises(DataGenerationError):
            mallows_normalization(5, -0.5)
