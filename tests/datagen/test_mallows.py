"""Tests for the Mallows model sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import kendall_tau
from repro.core.ranking import Ranking
from repro.datagen.mallows import (
    expected_kendall_distance,
    mallows_normalization,
    sample_mallows,
    sample_mallows_position_matrix,
    sample_mallows_ranking,
    sample_mallows_ranking_reference,
)
from repro.exceptions import DataGenerationError


class TestSampling:
    def test_samples_are_permutations(self, rng):
        modal = Ranking.identity(15)
        rankings = sample_mallows(modal, theta=0.5, n_rankings=20, rng=rng)
        assert rankings.n_rankings == 20
        for ranking in rankings:
            assert sorted(ranking.to_list()) == list(range(15))

    def test_large_theta_concentrates_on_modal(self, rng):
        modal = Ranking([4, 2, 0, 3, 1])
        for _ in range(10):
            sample = sample_mallows_ranking(modal, theta=50.0, rng=rng)
            assert sample == modal

    def test_zero_theta_is_dispersed(self, rng):
        modal = Ranking.identity(8)
        rankings = sample_mallows(modal, theta=0.0, n_rankings=200, rng=rng)
        mean_distance = np.mean([kendall_tau(modal, r) for r in rankings])
        # Uniform permutations average n(n-1)/4 = 14 inversions.
        assert mean_distance == pytest.approx(14.0, rel=0.15)

    def test_higher_theta_means_smaller_distance(self, rng):
        modal = Ranking.identity(12)
        loose = sample_mallows(modal, theta=0.2, n_rankings=100, rng=rng)
        tight = sample_mallows(modal, theta=1.5, n_rankings=100, rng=rng)
        loose_mean = np.mean([kendall_tau(modal, r) for r in loose])
        tight_mean = np.mean([kendall_tau(modal, r) for r in tight])
        assert tight_mean < loose_mean

    def test_mean_distance_matches_closed_form(self, rng):
        modal = Ranking.identity(10)
        theta = 0.7
        rankings = sample_mallows(modal, theta, n_rankings=600, rng=rng)
        empirical = np.mean([kendall_tau(modal, r) for r in rankings])
        assert empirical == pytest.approx(expected_kendall_distance(10, theta), rel=0.1)

    def test_seed_reproducibility(self):
        modal = Ranking.identity(10)
        first = sample_mallows(modal, 0.5, 5, rng=42)
        second = sample_mallows(modal, 0.5, 5, rng=42)
        assert first.to_order_lists() == second.to_order_lists()

    def test_negative_theta_rejected(self, rng):
        with pytest.raises(DataGenerationError):
            sample_mallows_ranking(Ranking.identity(4), theta=-0.1, rng=rng)

    def test_zero_rankings_rejected(self):
        with pytest.raises(DataGenerationError):
            sample_mallows(Ranking.identity(4), 0.5, 0)

    def test_labels_generated(self):
        rankings = sample_mallows(Ranking.identity(4), 0.5, 3, rng=0)
        assert rankings.labels == ("mallows-1", "mallows-2", "mallows-3")


class TestBatchedScalarEquivalence:
    """The batched sampler must reproduce the scalar RIM bit-for-bit."""

    @pytest.mark.parametrize("theta", [0.0, 0.3, 1.0, 5.0])
    def test_shared_seed_gives_identical_samples(self, theta):
        modal = Ranking(np.random.default_rng(3).permutation(17))
        batched_rng = np.random.default_rng(99)
        scalar_rng = np.random.default_rng(99)
        batched = sample_mallows(modal, theta, 25, rng=batched_rng)
        scalar = [
            sample_mallows_ranking_reference(modal, theta, scalar_rng)
            for _ in range(25)
        ]
        assert [r.to_list() for r in batched] == [r.to_list() for r in scalar]

    def test_shared_seed_leaves_identical_generator_state(self):
        modal = Ranking.identity(9)
        batched_rng = np.random.default_rng(5)
        scalar_rng = np.random.default_rng(5)
        sample_mallows(modal, 0.7, 12, rng=batched_rng)
        for _ in range(12):
            sample_mallows_ranking_reference(modal, 0.7, scalar_rng)
        # Downstream draws (e.g. a second dataset from the same stream) match.
        assert batched_rng.integers(1 << 30) == scalar_rng.integers(1 << 30)

    def test_scalar_wrapper_matches_reference(self):
        modal = Ranking.identity(8)
        first = sample_mallows_ranking(modal, 0.5, np.random.default_rng(2))
        second = sample_mallows_ranking_reference(modal, 0.5, np.random.default_rng(2))
        assert first == second

    def test_position_matrix_matches_ranking_set(self):
        modal = Ranking(np.random.default_rng(4).permutation(11))
        positions = sample_mallows_position_matrix(
            modal, 0.6, 8, np.random.default_rng(21)
        )
        rankings = sample_mallows(modal, 0.6, 8, rng=np.random.default_rng(21))
        assert np.array_equal(positions, rankings.position_matrix())

    def test_batched_expected_distance_matches_closed_form(self):
        modal = Ranking.identity(12)
        for theta in (0.2, 0.8):
            rankings = sample_mallows(modal, theta, 1_500, rng=int(theta * 10))
            empirical = float(np.mean(rankings.kendall_tau_vector(modal)))
            assert empirical == pytest.approx(
                expected_kendall_distance(12, theta), rel=0.08
            )


class TestEdgeCases:
    def test_theta_zero_positions_are_uniform(self):
        # Under theta = 0 every candidate's position is marginally uniform:
        # each row of the average one-hot position histogram tends to 1/n.
        n, m = 6, 4_000
        rankings = sample_mallows(Ranking.identity(n), 0.0, m, rng=17)
        positions = rankings.position_matrix()
        counts = np.stack(
            [(positions == p).sum(axis=0) for p in range(n)]
        )
        frequencies = counts / m
        assert np.abs(frequencies - 1.0 / n).max() < 0.03

    def test_very_large_theta_collapses_to_modal(self):
        modal = Ranking(np.random.default_rng(8).permutation(14))
        rankings = sample_mallows(modal, 80.0, 40, rng=5)
        assert all(ranking == modal for ranking in rankings)

    def test_single_candidate(self):
        rankings = sample_mallows(Ranking.identity(1), 0.9, 7, rng=1)
        assert rankings.n_rankings == 7
        assert all(ranking.to_list() == [0] for ranking in rankings)

    def test_batched_negative_theta_rejected(self):
        with pytest.raises(DataGenerationError):
            sample_mallows_position_matrix(
                Ranking.identity(4), -0.5, 3, np.random.default_rng(0)
            )


class TestClosedForms:
    def test_expected_distance_zero_theta(self):
        assert expected_kendall_distance(8, 0.0) == pytest.approx(14.0)

    def test_expected_distance_decreases_with_theta(self):
        values = [expected_kendall_distance(20, theta) for theta in (0.1, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_expected_distance_negative_theta_rejected(self):
        with pytest.raises(DataGenerationError):
            expected_kendall_distance(5, -1.0)

    def test_normalization_zero_theta_is_factorial(self):
        assert mallows_normalization(5, 0.0) == pytest.approx(120.0)

    def test_normalization_positive_theta(self):
        # psi(theta) = prod_i (1 - e^{-i theta}) / (1 - e^{-theta})
        value = mallows_normalization(3, 1.0)
        import math

        expected = 1.0 * (1 - math.exp(-2)) / (1 - math.exp(-1)) * (1 - math.exp(-3)) / (
            1 - math.exp(-1)
        )
        assert value == pytest.approx(expected)

    def test_normalization_negative_theta_rejected(self):
        with pytest.raises(DataGenerationError):
            mallows_normalization(5, -0.5)
