"""Tests for the exam-score and CSRankings synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.csrankings import generate_csrankings_dataset
from repro.datagen.exams import SUBJECTS, generate_exam_dataset
from repro.exceptions import DataGenerationError
from repro.fairness.fpr import fpr_by_group
from repro.fairness.parity import parity_scores


class TestExamDataset:
    def test_structure(self):
        dataset = generate_exam_dataset(120, seed=1)
        assert dataset.table.n_candidates == 120
        assert dataset.rankings.n_rankings == 3
        assert dataset.rankings.labels == SUBJECTS
        assert set(dataset.table.attribute_names) == {"Gender", "Race", "Lunch"}

    def test_scores_within_bounds(self):
        dataset = generate_exam_dataset(100, seed=2)
        for scores in dataset.scores.values():
            assert scores.min() >= 0.0
            assert scores.max() <= 100.0

    def test_every_group_nonempty(self):
        dataset = generate_exam_dataset(60, seed=3)
        for attribute in dataset.table.attribute_names:
            for group in dataset.table.groups(attribute):
                assert group.size > 0

    def test_reproducible(self):
        first = generate_exam_dataset(80, seed=5)
        second = generate_exam_dataset(80, seed=5)
        assert first.table == second.table
        assert first.rankings.to_order_lists() == second.rankings.to_order_lists()

    def test_lunch_bias_present_in_all_subjects(self):
        """The structural fact Table IV relies on: NoSub students rank higher."""
        dataset = generate_exam_dataset(200, seed=2022)
        for ranking in dataset.rankings:
            scores = fpr_by_group(ranking, dataset.table, "Lunch")
            assert scores["Lunch=NoSub"] > scores["Lunch=SubLunch"] + 0.1

    def test_gender_gap_flips_between_math_and_reading(self):
        dataset = generate_exam_dataset(200, seed=2022)
        by_label = dict(zip(dataset.rankings.labels, dataset.rankings))
        math_fpr = fpr_by_group(by_label["Math"], dataset.table, "Gender")
        reading_fpr = fpr_by_group(by_label["Reading"], dataset.table, "Gender")
        assert math_fpr["Gender=Man"] > math_fpr["Gender=Woman"] - 0.05
        assert reading_fpr["Gender=Woman"] > reading_fpr["Gender=Man"]

    def test_nathawaii_disadvantaged(self):
        dataset = generate_exam_dataset(200, seed=2022)
        for ranking in dataset.rankings:
            race_fpr = fpr_by_group(ranking, dataset.table, "Race")
            assert race_fpr["Race=NatHawaii"] == min(race_fpr.values())

    def test_too_few_students_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_exam_dataset(5)


class TestCSRankingsDataset:
    def test_structure(self):
        dataset = generate_csrankings_dataset(65, 2000, 2020, seed=41)
        assert dataset.table.n_candidates == 65
        assert dataset.rankings.n_rankings == 21
        assert dataset.years == tuple(range(2000, 2021))
        assert dataset.rankings.labels[0] == "2000"

    def test_both_types_present(self):
        dataset = generate_csrankings_dataset(30, 2015, 2018, seed=1)
        types = set(dataset.table.column("Type"))
        assert types == {"Private", "Public"}

    def test_all_regions_present(self):
        dataset = generate_csrankings_dataset(65, 2000, 2001, seed=41)
        assert set(dataset.table.column("Location")) == {
            "Northeast",
            "Midwest",
            "West",
            "South",
        }

    def test_northeast_advantage_is_persistent(self):
        """Every yearly ranking favours Northeast over South departments."""
        dataset = generate_csrankings_dataset(65, 2000, 2020, seed=41)
        for ranking in dataset.rankings:
            scores = fpr_by_group(ranking, dataset.table, "Location")
            assert scores["Location=Northeast"] > scores["Location=South"] + 0.1

    def test_location_bias_magnitude_matches_paper_range(self):
        dataset = generate_csrankings_dataset(65, 2000, 2020, seed=41)
        location_arps = [
            parity_scores(ranking, dataset.table)["Location"]
            for ranking in dataset.rankings
        ]
        # Paper Table V: yearly Location ARP roughly 0.35 - 0.50.
        assert 0.2 < float(np.mean(location_arps)) < 0.65

    def test_reproducible(self):
        first = generate_csrankings_dataset(40, 2010, 2015, seed=9)
        second = generate_csrankings_dataset(40, 2010, 2015, seed=9)
        assert first.rankings.to_order_lists() == second.rankings.to_order_lists()

    def test_invalid_year_range_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_csrankings_dataset(30, 2020, 2010)

    def test_too_few_departments_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_csrankings_dataset(4)
