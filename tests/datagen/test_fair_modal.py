"""Tests for the fairness-controlled modal-ranking generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import CandidateTable
from repro.datagen.attributes import paper_mallows_table, small_mallows_table
from repro.datagen.fair_modal import (
    FAIRNESS_PROFILES,
    biased_modal_ranking,
    calibrated_modal_ranking,
    generate_mallows_dataset,
    modal_ranking_with_parity_targets,
    privileged_modal_ranking,
    profile_modal_ranking,
)
from repro.exceptions import DataGenerationError
from repro.fairness.parity import arp, irp, parity_scores


class TestPrivilegedModal:
    def test_maximal_intersection_bias(self):
        table = small_mallows_table(group_size=2)
        modal = privileged_modal_ranking(table, rng=3)
        assert irp(modal, table) == pytest.approx(1.0)
        assert arp(modal, table, "Gender") == pytest.approx(1.0)

    def test_custom_privilege_order(self):
        table = small_mallows_table(group_size=2)
        modal = privileged_modal_ranking(
            table, privilege_order={"Gender": ["Woman", "Man"]}, rng=3
        )
        # Women occupy the top half now.
        women = table.group("Gender", "Woman")
        assert set(modal.top(6).tolist()) == set(women.members)

    def test_incomplete_privilege_order_rejected(self):
        table = small_mallows_table(group_size=2)
        with pytest.raises(DataGenerationError):
            privileged_modal_ranking(table, privilege_order={"Gender": ["Man"]})


class TestBiasedModal:
    def test_zero_bias_has_low_parity_gap(self):
        table = paper_mallows_table(group_size=4)
        rng = np.random.default_rng(5)
        gaps = [
            arp(biased_modal_ranking(table, {}, rng=rng), table, "Gender")
            for _ in range(5)
        ]
        assert min(gaps) < 0.35  # unbiased rankings hover near parity

    def test_strong_bias_approaches_one(self):
        table = paper_mallows_table(group_size=4)
        modal = biased_modal_ranking(table, {"Gender": 50.0}, rng=5)
        assert arp(modal, table, "Gender") > 0.95

    def test_bias_is_monotone_in_strength(self):
        table = paper_mallows_table(group_size=4)
        noise = np.random.default_rng(0).uniform(size=table.n_candidates)
        values = [
            arp(biased_modal_ranking(table, {"Race": s}, noise=noise), table, "Race")
            for s in (0.0, 0.5, 2.0, 10.0)
        ]
        assert values == sorted(values)

    def test_unknown_attribute_rejected(self):
        table = small_mallows_table()
        with pytest.raises(DataGenerationError):
            biased_modal_ranking(table, {"Age": 1.0}, rng=0)

    def test_negative_strength_rejected(self):
        table = small_mallows_table()
        with pytest.raises(DataGenerationError):
            biased_modal_ranking(table, {"Gender": -1.0}, rng=0)

    def test_bad_noise_shape_rejected(self):
        table = small_mallows_table()
        with pytest.raises(DataGenerationError):
            biased_modal_ranking(table, {}, noise=np.zeros(3))


class TestCalibration:
    def test_hits_targets_within_tolerance(self):
        table = paper_mallows_table(group_size=4)
        targets = {"Gender": 0.5, "Race": 0.4}
        modal = calibrated_modal_ranking(table, targets, rng=11)
        assert arp(modal, table, "Gender") == pytest.approx(0.5, abs=0.08)
        assert arp(modal, table, "Race") == pytest.approx(0.4, abs=0.08)

    def test_invalid_target_rejected(self):
        table = small_mallows_table()
        with pytest.raises(DataGenerationError):
            calibrated_modal_ranking(table, {"Gender": 1.5}, rng=0)

    def test_profile_presets_are_ordered(self):
        table = paper_mallows_table(group_size=4)
        scores = {}
        for profile in FAIRNESS_PROFILES:
            modal = profile_modal_ranking(table, profile, rng=9)
            scores[profile] = parity_scores(modal, table)
        assert scores["low"]["Gender"] > scores["medium"]["Gender"] > scores["high"]["Gender"]
        assert (
            scores["low"][CandidateTable.INTERSECTION]
            > scores["high"][CandidateTable.INTERSECTION]
        )

    def test_profile_accepts_suffix(self):
        table = small_mallows_table()
        assert profile_modal_ranking(table, "Low-Fair", rng=1) is not None

    def test_unknown_profile_rejected(self):
        table = small_mallows_table()
        with pytest.raises(DataGenerationError):
            profile_modal_ranking(table, "ultra", rng=1)

    def test_profile_requires_matching_attributes(self):
        table = CandidateTable({"Location": ["N", "S", "N", "S"]})
        with pytest.raises(DataGenerationError):
            profile_modal_ranking(table, "low", rng=1)


class TestParityTargetRelaxation:
    def test_targets_are_upper_bounds(self):
        table = small_mallows_table(group_size=2)
        targets = {"Gender": 0.5, "Race": 0.6}
        modal = modal_ranking_with_parity_targets(table, targets, rng=3)
        scores = parity_scores(modal, table)
        assert scores["Gender"] <= 0.5 + 1e-9
        assert scores["Race"] <= 0.6 + 1e-9


class TestDatasetGeneration:
    def test_named_profile_dataset(self):
        table = small_mallows_table(group_size=2)
        dataset = generate_mallows_dataset(table, "medium", theta=0.5, n_rankings=10, rng=4)
        assert dataset.name == "medium-fair"
        assert dataset.rankings.n_rankings == 10
        assert dataset.theta == 0.5
        assert set(dataset.modal_parity) == set(table.all_fairness_entities())

    def test_explicit_target_dataset(self):
        table = small_mallows_table(group_size=2)
        dataset = generate_mallows_dataset(
            table, {"Gender": 0.3}, theta=0.5, n_rankings=5, rng=4, name="custom-gender"
        )
        assert dataset.name == "custom-gender"

    def test_reproducibility(self):
        table = small_mallows_table(group_size=2)
        first = generate_mallows_dataset(table, "low", theta=0.5, n_rankings=5, rng=4)
        second = generate_mallows_dataset(table, "low", theta=0.5, n_rankings=5, rng=4)
        assert first.modal == second.modal
        assert first.rankings.to_order_lists() == second.rankings.to_order_lists()
