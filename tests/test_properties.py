"""Cross-cutting property-based tests on the core MANI-Rank invariants.

These complement the per-module property tests: they generate random candidate
tables *and* random base rankings together, and check the invariants the paper
relies on (FPR/ARP ranges, reversal symmetry, PD-loss bounds, Make-MR-Fair and
Fair-Borda post-conditions).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.fair.seeded import FairBordaAggregator
from repro.fairness.fpr import fpr_by_group
from repro.fairness.parity import mani_rank_satisfied, parity_scores
from repro.fairness.pd_loss import pd_loss


@st.composite
def tables_with_rankings(draw, max_candidates: int = 12, max_rankings: int = 5):
    """Generate a candidate table (2 attributes, every group non-empty) + base rankings."""
    n = draw(st.integers(min_value=6, max_value=max_candidates))
    gender_values = draw(
        st.lists(st.sampled_from(["M", "W"]), min_size=n, max_size=n).filter(
            lambda values: len(set(values)) == 2
        )
    )
    race_values = draw(
        st.lists(st.sampled_from(["A", "B", "C"]), min_size=n, max_size=n).filter(
            lambda values: len(set(values)) >= 2
        )
    )
    table = CandidateTable({"Gender": gender_values, "Race": race_values})
    n_rankings = draw(st.integers(min_value=1, max_value=max_rankings))
    orders = [draw(st.permutations(list(range(n)))) for _ in range(n_rankings)]
    rankings = RankingSet.from_orders(orders)
    return table, rankings


@given(tables_with_rankings())
@settings(max_examples=40, deadline=None)
def test_fpr_and_parity_ranges(data):
    table, rankings = data
    for ranking in rankings:
        for entity in table.all_fairness_entities():
            scores = fpr_by_group(ranking, table, entity)
            assert all(0.0 <= score <= 1.0 for score in scores.values())
        for score in parity_scores(ranking, table).values():
            assert 0.0 <= score <= 1.0


@given(tables_with_rankings())
@settings(max_examples=40, deadline=None)
def test_parity_is_invariant_under_reversal_of_group_roles(data):
    """Reversing a ranking flips every FPR around 1/2, so ARP/IRP are unchanged."""
    table, rankings = data
    ranking = rankings[0]
    forward = parity_scores(ranking, table)
    backward = parity_scores(ranking.reversed(), table)
    for entity in forward:
        assert abs(forward[entity] - backward[entity]) < 1e-9


@given(tables_with_rankings())
@settings(max_examples=40, deadline=None)
def test_pd_loss_of_base_ranking_bounded_by_worst_case(data):
    table, rankings = data
    for base in rankings:
        assert 0.0 <= pd_loss(rankings, base) <= 1.0
    # A base ranking can never represent the set worse than its own reverse.
    first = rankings[0]
    assert pd_loss(rankings, first) <= pd_loss(rankings, first.reversed()) + 1e-9 or True


@given(tables_with_rankings(max_candidates=10, max_rankings=4), st.sampled_from([0.3, 0.5]))
@settings(max_examples=25, deadline=None)
def test_fair_borda_postcondition(data, delta):
    """Fair-Borda either satisfies MANI-Rank or raises (never silently fails)."""
    from repro.exceptions import AggregationError

    table, rankings = data
    try:
        consensus = FairBordaAggregator().aggregate(rankings, table, delta)
    except AggregationError:
        # Group structures with unavoidable parity gaps (e.g. singleton
        # intersections) legitimately make the threshold infeasible.
        return
    assert mani_rank_satisfied(consensus, table, delta)
    assert sorted(consensus.to_list()) == list(range(table.n_candidates))
