"""Property and edge-case tests for the streaming consensus engine.

The load-bearing contract: every incrementally-patched artifact (position /
precedence / margin matrices, profile fingerprint, consensus payload) must be
*bit-identical* to a from-scratch rebuild of the same profile, under
randomized add/remove sequences including weighted and duplicated rankings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.fingerprint import fingerprint_ranking_set
from repro.exceptions import ValidationError
from repro.streaming import StreamingConsensusEngine

DELTA = 0.35
N = 6
# Dyadic-rational weights: their precedence contributions are exact in
# float64, so patched matrices must match a rebuild bit-for-bit.
WEIGHT_POOL = (0.5, 1.0, 1.5, 2.0)


def random_order(rng: np.random.Generator) -> list[int]:
    return [int(c) for c in rng.permutation(N)]


def materialize(engine: StreamingConsensusEngine) -> None:
    """Force every cacheable matrix so subsequent updates exercise patching."""
    rankings = engine.rankings
    assert rankings is not None
    rankings.position_matrix()
    for weighted in (False, True):
        rankings.precedence_matrix(weighted=weighted)
        rankings.margin_matrix(weighted=weighted)


def assert_matches_rebuild(engine: StreamingConsensusEngine) -> None:
    """All patched matrices and the fingerprint equal the rebuilt ground truth."""
    rebuilt = engine.rebuild()
    live = engine.rankings
    assert live is not None
    assert engine.profile_fingerprint == fingerprint_ranking_set(rebuilt)
    assert live.position_matrix().tobytes() == rebuilt.position_matrix().tobytes()
    for weighted in (False, True):
        assert (
            live.precedence_matrix(weighted=weighted).tobytes()
            == rebuilt.precedence_matrix(weighted=weighted).tobytes()
        )
        assert (
            live.margin_matrix(weighted=weighted).tobytes()
            == rebuilt.margin_matrix(weighted=weighted).tobytes()
        )


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_streamed_state_matches_rebuild(self, tiny_table, seed):
        rng = np.random.default_rng(seed)
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        profile: list[tuple[tuple[int, ...], float]] = []
        for _ in range(25):
            can_remove = bool(profile)
            if not can_remove or rng.random() < 0.6:
                count = int(rng.integers(1, 4))
                orders = [random_order(rng) for _ in range(count)]
                weights = [float(rng.choice(WEIGHT_POOL)) for _ in range(count)]
                if engine.rankings is not None:
                    materialize(engine)
                engine.add_rankings(orders, weights=weights)
                profile.extend(
                    (tuple(order), weight) for order, weight in zip(orders, weights)
                )
            else:
                index = int(rng.integers(len(profile)))
                order, weight = profile.pop(index)
                materialize(engine)
                if profile:
                    engine.remove_rankings([list(order)], weights=[weight])
                else:
                    engine.remove_rankings([list(order)], weights=[weight])
                    assert engine.is_empty
                    continue
            assert_matches_rebuild(engine)
        if not engine.is_empty:
            assert engine.consensus() == engine.rebuild_reference()

    @pytest.mark.parametrize("seed", [5, 6])
    @pytest.mark.parametrize("strategy", [None, "insertion"])
    def test_warm_repair_matches_from_scratch_reference(
        self, tiny_table, seed, strategy
    ):
        rng = np.random.default_rng(seed)
        engine = StreamingConsensusEngine(
            tiny_table, strategy=strategy, delta=DELTA
        )
        engine.add_rankings([random_order(rng) for _ in range(6)])
        engine.consensus()  # establishes the warm-start seed
        for _ in range(3):
            previous = engine.last_consensus
            engine.add_rankings([random_order(rng) for _ in range(2)])
            engine.remove_rankings([engine.rankings.rankings[0].to_list()])
            assert engine.repair() == engine.repair_reference(previous)

    def test_repair_without_previous_falls_back_to_consensus(self, tiny_table, rng):
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        engine.add_rankings([random_order(rng) for _ in range(4)])
        repaired = engine.repair()
        assert repaired["seeded_from"] == "cold-start"
        assert repaired["consensus"] == engine.consensus()["consensus"]


class TestEdgeCases:
    def test_duplicate_submissions_each_count(self, tiny_table, rng):
        order = random_order(rng)
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        engine.add_rankings([order, order, random_order(rng)])
        assert engine.n_rankings == 3
        engine.remove_rankings([order])
        assert engine.n_rankings == 2
        assert_matches_rebuild(engine)

    def test_removing_the_last_copy_then_again_fails(self, tiny_table, rng):
        order = random_order(rng)
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        engine.add_rankings([order, random_order(rng)])
        engine.remove_rankings([order])
        with pytest.raises(ValidationError, match="not.*present|no ranking"):
            engine.remove_rankings([order])
        assert engine.n_rankings == 1

    def test_add_then_remove_restores_byte_identical_matrices(self, tiny_table, rng):
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        engine.add_rankings([random_order(rng) for _ in range(5)])
        materialize(engine)
        before = {
            (kind, weighted): getattr(engine.rankings, kind)(weighted=weighted).tobytes()
            for kind in ("precedence_matrix", "margin_matrix")
            for weighted in (False, True)
        }
        fingerprint = engine.profile_fingerprint
        batch = [random_order(rng) for _ in range(3)]
        weights = [0.5, 2.0, 1.0]
        engine.add_rankings(batch, weights=weights)
        engine.remove_rankings(batch, weights=weights)
        after = {
            (kind, weighted): getattr(engine.rankings, kind)(weighted=weighted).tobytes()
            for kind in ("precedence_matrix", "margin_matrix")
            for weighted in (False, True)
        }
        assert before == after
        assert engine.profile_fingerprint == fingerprint

    def test_weighted_profile_requires_matching_weight_to_remove(
        self, tiny_table, rng
    ):
        order = random_order(rng)
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        engine.add_rankings([order], weights=[2.0])
        with pytest.raises(ValidationError, match="weight"):
            engine.remove_rankings([order])  # default weight 1.0 does not match
        engine.remove_rankings([order], weights=[2.0])
        assert engine.is_empty

    def test_empty_profile_errors(self, tiny_table, rng):
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        assert engine.is_empty
        assert engine.profile_fingerprint is None
        with pytest.raises(ValidationError, match="empty"):
            engine.consensus()
        with pytest.raises(ValidationError, match="empty"):
            engine.remove_rankings([random_order(rng)])
        order = random_order(rng)
        engine.add_rankings([order])
        engine.remove_rankings([order])
        assert engine.is_empty and engine.profile_fingerprint is None
        with pytest.raises(ValidationError, match="empty"):
            engine.repair()

    def test_failed_removal_leaves_profile_untouched(self, tiny_table, rng):
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        present = random_order(rng)
        engine.add_rankings([present])
        version = engine.profile_version
        absent = present[::-1]
        with pytest.raises(ValidationError):
            engine.remove_rankings([present, absent])
        assert engine.n_rankings == 1
        assert engine.profile_version == version
        assert_matches_rebuild(engine)

    def test_wrong_universe_is_rejected(self, tiny_table):
        engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
        with pytest.raises(ValidationError, match="universe|candidates"):
            engine.add_rankings([[0, 1, 2]])

    def test_seeded_engine_matches_its_seed(self, tiny_table, tiny_rankings):
        engine = StreamingConsensusEngine(
            tiny_table, delta=DELTA, rankings=tiny_rankings
        )
        assert engine.profile_fingerprint == fingerprint_ranking_set(tiny_rankings)
        assert engine.consensus() == engine.rebuild_reference()
