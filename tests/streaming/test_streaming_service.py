"""Tests for the cache-integrated streaming service: keys, invalidation, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.service import ConsensusCacheService
from repro.cache.store import ResultCache
from repro.exceptions import ValidationError
from repro.streaming import StreamEvent, StreamingConsensusEngine, StreamingConsensusService

DELTA = 0.35
N = 6


def event(rng: np.random.Generator, weight: float = 1.0) -> StreamEvent:
    return StreamEvent(
        op="add", order=tuple(int(c) for c in rng.permutation(N)), weight=weight
    )


@pytest.fixture
def streaming(tiny_table, tmp_path):
    engine = StreamingConsensusEngine(tiny_table, delta=DELTA)
    cache = ResultCache(directory=tmp_path / "cache")
    return StreamingConsensusService(engine, cache=cache)


class TestService:
    def test_streamed_key_and_payload_match_the_batch_path(self, streaming, tiny_table, rng):
        streaming.update(add=[event(rng) for _ in range(4)])
        served = streaming.aggregate()
        batch = ConsensusCacheService().aggregate(
            streaming.engine.rebuild(), tiny_table, delta=DELTA
        )
        assert served["key"] == batch["key"]
        assert served["result"] == batch["result"]

    def test_update_invalidates_served_entries_in_both_tiers(self, streaming, rng):
        streaming.update(add=[event(rng) for _ in range(3)])
        served = streaming.aggregate()
        digest = served["key"]
        assert streaming.cache.disk.path_for(digest).exists()
        outcome = streaming.update(add=[event(rng)])
        assert outcome["invalidated"] == 1
        assert not streaming.cache.disk.path_for(digest).exists()
        assert streaming.cache.get(digest) is None
        stats = streaming.stats()
        assert stats["invalidations"] == 1
        assert stats["profile_version"] == outcome["profile_version"]

    def test_aggregate_is_a_hit_until_the_profile_changes(self, streaming, rng):
        streaming.update(add=[event(rng) for _ in range(3)])
        assert streaming.aggregate()["cached"] is False
        assert streaming.aggregate()["cached"] is True
        streaming.update(add=[event(rng)])
        assert streaming.aggregate()["cached"] is False

    def test_update_can_add_and_remove_in_one_batch(self, streaming, rng):
        first = event(rng)
        streaming.update(add=[first, event(rng)])
        outcome = streaming.update(add=[event(rng)], remove=[first])
        assert outcome["added"] == 1 and outcome["removed"] == 1
        assert outcome["n_rankings"] == 2

    def test_empty_update_is_rejected(self, streaming):
        with pytest.raises(ValidationError, match="at least one"):
            streaming.update()

    def test_aggregate_on_empty_profile_is_rejected(self, streaming):
        with pytest.raises(ValidationError, match="empty"):
            streaming.aggregate()

    def test_repair_reports_the_profile_version(self, streaming, rng):
        streaming.update(add=[event(rng) for _ in range(4)])
        streaming.aggregate()
        streaming.update(add=[event(rng)])
        repaired = streaming.repair()
        assert repaired["profile_version"] == streaming.engine.profile_version
        assert repaired["result"]["consensus"]["names"]

    def test_describe_snapshot(self, streaming, rng):
        before = streaming.describe()
        assert before["n_rankings"] == 0 and before["profile"] is None
        streaming.update(add=[event(rng, weight=2.0)])
        after = streaming.describe()
        assert after["n_rankings"] == 1
        assert after["profile_version"] == 1
        assert after["method"] == "fair-borda"
