"""Tests for the streaming HTTP endpoints (/update, /consensus) and /stats."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cache.http import ConsensusHTTPServer
from repro.cache.service import ConsensusCacheService
from repro.io.serialization import candidate_table_to_dict, ranking_set_to_dict

DELTA = 0.35

RANKING_A = [0, 1, 2, 3, 4, 5]
RANKING_B = [5, 4, 3, 2, 1, 0]
RANKING_C = [1, 0, 3, 2, 5, 4]


async def http_request(host, port, verb, path, body=None):
    """Issue one HTTP/1.1 request with a raw asyncio socket, return (status, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{verb} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()  # server always closes the connection
    writer.close()
    await writer.wait_closed()
    header_text, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header_text.split()[1])
    return status, json.loads(body_bytes)


def with_server(scenario, service=None):
    """Run ``scenario(host, port)`` against a fresh server on a free port."""

    async def main():
        server = ConsensusHTTPServer(service or ConsensusCacheService(), port=0)
        host, port = await server.start()
        serve_task = asyncio.create_task(server.serve())
        try:
            return await scenario(host, port)
        finally:
            server.request_stop()
            await serve_task

    return asyncio.run(main())


@pytest.fixture
def first_update(tiny_table):
    return {
        "candidates": candidate_table_to_dict(tiny_table),
        "delta": DELTA,
        "add": [
            {"ranking": RANKING_A, "label": "j1"},
            {"ranking": RANKING_C},
        ],
    }


class TestStreamingEndpoints:
    def test_update_then_consensus_then_invalidate(self, first_update):
        async def scenario(host, port):
            update = await http_request(host, port, "POST", "/update", first_update)
            cold = await http_request(host, port, "GET", "/consensus")
            warm = await http_request(host, port, "GET", "/consensus")
            second = await http_request(
                host, port, "POST", "/update", {"add": [{"ranking": RANKING_B}]}
            )
            refreshed = await http_request(host, port, "GET", "/consensus")
            stats = await http_request(host, port, "GET", "/stats")
            return update, cold, warm, second, refreshed, stats

        update, cold, warm, second, refreshed, stats = with_server(scenario)
        assert update[0] == 200
        assert update[1]["profile_version"] == 1 and update[1]["n_rankings"] == 2
        assert cold[0] == warm[0] == 200
        assert cold[1]["cached"] is False and warm[1]["cached"] is True
        assert cold[1]["result"] == warm[1]["result"]
        assert second[1]["invalidated"] == 1
        assert refreshed[1]["cached"] is False
        assert refreshed[1]["key"] != cold[1]["key"]
        assert stats[1]["streaming"]["n_rankings"] == 3
        assert stats[1]["streaming"]["profile_version"] == 2
        assert stats[1]["cache"]["invalidations"] == 1
        assert stats[1]["cache"]["profile_version"] == 2

    def test_streamed_consensus_is_bit_identical_to_aggregate(
        self, first_update, tiny_table
    ):
        async def scenario(host, port):
            await http_request(host, port, "POST", "/update", first_update)
            streamed = await http_request(host, port, "GET", "/consensus")
            server_profile = await http_request(host, port, "GET", "/stats")
            return streamed, server_profile

        service = ConsensusCacheService()
        streamed, _ = with_server(scenario, service=service)

        from repro.core.ranking import Ranking
        from repro.core.ranking_set import RankingSet

        profile = RankingSet([Ranking(RANKING_A), Ranking(RANKING_C)])
        batch = ConsensusCacheService().aggregate(profile, tiny_table, delta=DELTA)
        assert streamed[1]["key"] == batch["key"]
        assert streamed[1]["result"] == batch["result"]

    def test_first_update_requires_the_candidate_table(self):
        async def scenario(host, port):
            return await http_request(
                host, port, "POST", "/update", {"add": [{"ranking": RANKING_A}]}
            )

        status, payload = with_server(scenario)
        assert status == 400
        assert "candidate table" in payload["error"]

    def test_consensus_before_any_update_is_a_client_error(self):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/consensus")

        status, payload = with_server(scenario)
        assert status == 400
        assert "/update" in payload["error"]

    def test_malformed_update_entries_are_client_errors(self, first_update, tiny_table):
        async def scenario(host, port):
            await http_request(host, port, "POST", "/update", first_update)
            bad_entry = await http_request(
                host, port, "POST", "/update", {"add": [{"weight": 2}]}
            )
            bad_remove = await http_request(
                host, port, "POST", "/update", {"remove": [{"ranking": RANKING_B}]}
            )
            empty = await http_request(host, port, "POST", "/update", {})
            return bad_entry, bad_remove, empty

        bad_entry, bad_remove, empty = with_server(scenario)
        assert bad_entry[0] == 400
        assert bad_remove[0] == 400  # RANKING_B was never submitted
        assert empty[0] == 400

    def test_stats_reports_no_streaming_profile_before_first_update(self):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/stats")

        status, payload = with_server(scenario)
        assert status == 200
        assert payload["streaming"] is None
