"""Tests for the mani-rank command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.io.csv_io import write_candidate_table, write_ranking_set

#: Tiny committed CSV fixture; the CI cli-smoke job aggregates the same files
#: through the installed ``mani-rank`` entry point.
FIXTURE_DIRECTORY = Path(__file__).resolve().parent.parent / "examples" / "data"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "ci"
        assert args.experiment == "table1"

    def test_aggregate_defaults(self):
        args = build_parser().parse_args(["aggregate", "r.csv", "c.csv"])
        assert args.method == "fair-borda"
        assert args.delta == 0.1
        assert args.strategy is None

    def test_aggregate_strategy_choices(self):
        args = build_parser().parse_args(
            ["aggregate", "r.csv", "c.csv", "--strategy", "insertion"]
        )
        assert args.strategy == "insertion"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["aggregate", "r.csv", "c.csv", "--strategy", "nope"]
            )

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "events.jsonl", "c.csv"])
        assert args.method == "fair-borda"
        assert args.delta == 0.1
        assert args.strategy is None
        assert args.verify is False
        assert args.dump_profile is None
        assert args.output is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8340
        assert args.cache_dir is None
        assert args.memory_capacity == 256
        assert args.cache_policy == "lru"
        assert args.cache_ttl is None
        assert args.max_requests is None
        assert args.max_inflight == 64
        assert args.queue_depth == 16
        assert args.read_timeout == 10.0
        assert args.drain_timeout == 5.0

    def test_cache_policy_choices(self):
        for command in (["serve"], ["aggregate", "r.csv", "c.csv"]):
            args = build_parser().parse_args(
                [*command, "--cache-policy", "cost-aware", "--cache-ttl", "300"]
            )
            assert args.cache_policy == "cost-aware"
            assert args.cache_ttl == 300.0
            with pytest.raises(SystemExit):
                build_parser().parse_args([*command, "--cache-policy", "nope"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output
        assert "fair-kemeny" in output

    def test_run_table1_and_save(self, tmp_path, capsys):
        output_path = tmp_path / "table1.json"
        assert main(["run", "table1", "--output", str(output_path), "--quiet"]) == 0
        payload = json.loads(output_path.read_text())
        assert payload["experiment"] == "table1"
        assert len(payload["records"]) == 3

    def test_run_prints_table(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Low-Fair" in capsys.readouterr().out

    def test_run_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "figure99"])

    def test_aggregate_command(self, tmp_path, capsys, tiny_table, tiny_rankings):
        candidates_csv = tmp_path / "candidates.csv"
        rankings_csv = tmp_path / "rankings.csv"
        write_candidate_table(tiny_table, candidates_csv)
        write_ranking_set(tiny_rankings, tiny_table, rankings_csv)
        exit_code = main(
            [
                "aggregate",
                str(rankings_csv),
                str(candidates_csv),
                "--method",
                "fair-borda",
                "--delta",
                "0.35",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fair-Borda" in output
        assert "PD loss" in output
        assert "IRP" in output

    def test_aggregate_with_strategy(self, tmp_path, capsys, tiny_table, tiny_rankings):
        candidates_csv = tmp_path / "candidates.csv"
        rankings_csv = tmp_path / "rankings.csv"
        write_candidate_table(tiny_table, candidates_csv)
        write_ranking_set(tiny_rankings, tiny_table, rankings_csv)
        exit_code = main(
            [
                "aggregate",
                str(rankings_csv),
                str(candidates_csv),
                "--delta",
                "0.35",
                "--strategy",
                "insertion",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fair-Borda" in output
        assert "PD loss" in output

    def test_aggregate_kernel_backend_flag(self, capsys):
        from repro.kernels import set_default_backend

        arguments = [
            "aggregate",
            str(FIXTURE_DIRECTORY / "rankings.csv"),
            str(FIXTURE_DIRECTORY / "candidates.csv"),
            "--kernel-backend",
            "numpy",
        ]
        try:
            assert main(arguments) == 0
        finally:
            set_default_backend(None)
        assert "Fair-Borda" in capsys.readouterr().out

    def test_aggregate_unknown_kernel_backend_explains(self, capsys):
        arguments = [
            "aggregate",
            str(FIXTURE_DIRECTORY / "rankings.csv"),
            str(FIXTURE_DIRECTORY / "candidates.csv"),
            "--kernel-backend",
            "no-such-backend",
        ]
        assert main(arguments) == 2
        stderr = capsys.readouterr().err
        assert "unknown kernel backend" in stderr
        assert "numpy" in stderr

    @pytest.mark.parametrize("strategy", [None, "insertion"])
    def test_aggregate_committed_fixture(self, capsys, strategy):
        arguments = [
            "aggregate",
            str(FIXTURE_DIRECTORY / "rankings.csv"),
            str(FIXTURE_DIRECTORY / "candidates.csv"),
        ]
        if strategy is not None:
            arguments += ["--strategy", strategy]
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "Fair-Borda" in output
        assert "PD loss" in output

    def test_stream_committed_fixture_verifies_bit_identity(self, tmp_path, capsys):
        profile_csv = tmp_path / "profile.csv"
        output_json = tmp_path / "consensus.json"
        assert main([
            "stream",
            str(FIXTURE_DIRECTORY / "stream_events.jsonl"),
            str(FIXTURE_DIRECTORY / "candidates.csv"),
            "--verify",
            "--dump-profile",
            str(profile_csv),
            "--output",
            str(output_json),
        ]) == 0
        output = capsys.readouterr().out
        assert "replayed 12 events" in output
        assert "bit-identical" in output
        assert "PD loss" in output

        # The dumped profile aggregated from scratch must reproduce the
        # streamed payload bit-for-bit (the stream-smoke CI contract).
        from repro.cache.service import compute_consensus_payload
        from repro.io.csv_io import read_candidate_table, read_ranking_set

        table = read_candidate_table(FIXTURE_DIRECTORY / "candidates.csv")
        rankings = read_ranking_set(profile_csv, table)
        streamed = json.loads(output_json.read_text())
        assert streamed == compute_consensus_payload(rankings, table)

    def test_stream_rejects_a_malformed_event_log(self, tmp_path):
        from repro.exceptions import ValidationError

        events = tmp_path / "events.jsonl"
        events.write_text('{"op": "add", "ranking": ["ana"]}\nnot json\n')
        with pytest.raises(ValidationError, match="invalid JSON"):
            main([
                "stream",
                str(events),
                str(FIXTURE_DIRECTORY / "candidates.csv"),
            ])

    def test_aggregate_cache_dir_replays_the_stored_result(self, tmp_path, capsys):
        cache_dir = tmp_path / "consensus-cache"
        arguments = [
            "aggregate",
            str(FIXTURE_DIRECTORY / "rankings.csv"),
            str(FIXTURE_DIRECTORY / "candidates.csv"),
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert "cache: miss" in cold
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert "cache: hit" in warm
        # Identical consensus and metrics, straight from the disk blob.
        assert cold.replace("cache: miss", "cache: hit") == warm

    def test_serve_command_smoke(self, tmp_path):
        """`mani-rank serve` binds, answers each endpoint, and exits cleanly."""
        import json
        import re
        import subprocess
        import sys
        import urllib.request

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--max-requests",
                "3",
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"
            body = json.dumps(
                {
                    "rankings_csv": str(FIXTURE_DIRECTORY / "rankings.csv"),
                    "candidates_csv": str(FIXTURE_DIRECTORY / "candidates.csv"),
                }
            ).encode()
            request = urllib.request.Request(
                f"{base}/aggregate", data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                aggregate = json.loads(response.read())
            request = urllib.request.Request(f"{base}/fairness", data=body, method="POST")
            with urllib.request.urlopen(request, timeout=30) as response:
                fairness = json.loads(response.read())
            with urllib.request.urlopen(f"{base}/stats", timeout=30) as response:
                stats = json.loads(response.read())
            assert process.wait(timeout=30) == 0
        finally:
            process.stdout.close()
            if process.poll() is None:
                process.kill()
                process.wait()
        assert aggregate["cached"] is False
        assert fairness["cached"] is True  # same cache entry as /aggregate
        assert stats["cache"]["hits"] == 1

    def test_serve_drains_cleanly_on_sigterm(self, tmp_path):
        """SIGTERM flips readiness and exits 0 within the drain timeout."""
        import json
        import re
        import signal
        import subprocess
        import sys
        import urllib.error
        import urllib.request

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--drain-timeout",
                "5",
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"
            with urllib.request.urlopen(f"{base}/readyz", timeout=30) as response:
                ready = json.loads(response.read())
            assert ready["ready"] is True
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            with pytest.raises(urllib.error.URLError):
                urllib.request.urlopen(f"{base}/readyz", timeout=5)
        finally:
            process.stdout.close()
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_aggregate_strategy_requires_seeded_method(
        self, tmp_path, tiny_table, tiny_rankings
    ):
        from repro.exceptions import AggregationError

        candidates_csv = tmp_path / "candidates.csv"
        rankings_csv = tmp_path / "rankings.csv"
        write_candidate_table(tiny_table, candidates_csv)
        write_ranking_set(tiny_rankings, tiny_table, rankings_csv)
        with pytest.raises(AggregationError, match="seeded method"):
            main(
                [
                    "aggregate",
                    str(rankings_csv),
                    str(candidates_csv),
                    "--method",
                    "pick-fairest-perm",
                    "--strategy",
                    "insertion",
                ]
            )
