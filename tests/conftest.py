"""Shared fixtures for the MANI-Rank reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.attributes import small_mallows_table
from repro.datagen.fair_modal import generate_mallows_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_table() -> CandidateTable:
    """Six candidates, two binary-ish protected attributes, all groups non-empty."""
    return CandidateTable(
        {
            "Gender": ["Man", "Woman", "Woman", "Man", "Woman", "Man"],
            "Race": ["A", "A", "B", "B", "A", "B"],
        },
        names=["c0", "c1", "c2", "c3", "c4", "c5"],
    )


@pytest.fixture
def tiny_rankings() -> RankingSet:
    """Three base rankings over the six tiny-table candidates."""
    return RankingSet.from_orders(
        [
            [0, 3, 5, 1, 2, 4],
            [3, 0, 5, 2, 1, 4],
            [0, 5, 3, 2, 4, 1],
        ],
        labels=["r1", "r2", "r3"],
    )


@pytest.fixture
def single_attribute_table() -> CandidateTable:
    """Four candidates with a single binary protected attribute."""
    return CandidateTable({"Gender": ["M", "F", "M", "F"]})


@pytest.fixture
def biased_ranking_for_tiny_table() -> Ranking:
    """All men above all women in the tiny table (maximally gender-biased)."""
    # Men are candidates 0, 3, 5; women are 1, 2, 4.
    return Ranking([0, 3, 5, 1, 2, 4])


@pytest.fixture(scope="session")
def small_dataset():
    """A 12-candidate Mallows dataset with a low-fairness modal ranking.

    Session-scoped because several aggregation and fairness tests reuse it and
    generation involves calibration.
    """
    table = small_mallows_table(group_size=2)
    return generate_mallows_dataset(table, "low", theta=0.6, n_rankings=20, rng=7)


@pytest.fixture(scope="session")
def small_table(small_dataset) -> CandidateTable:
    """Candidate table of the session-scoped small dataset."""
    return small_dataset.table


@pytest.fixture(scope="session")
def small_rankings(small_dataset) -> RankingSet:
    """Base rankings of the session-scoped small dataset."""
    return small_dataset.rankings
