"""Quickstart: build a fair consensus ranking in a dozen lines.

A hiring panel of four reviewers ranks eight applicants described by two
protected attributes.  We aggregate their rankings with plain Kemeny (which
inherits the panel's bias) and with Fair-Kemeny / Fair-Borda at a MANI-Rank
threshold of Δ = 0.2, and compare fairness and preference representation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CandidateTable,
    FairBordaAggregator,
    FairKemenyAggregator,
    KemenyAggregator,
    RankingSet,
    evaluate_mani_rank,
    pd_loss,
)


def main() -> None:
    # Eight applicants with Gender and Veteran status as protected attributes.
    applicants = CandidateTable(
        {
            "Gender": ["Man", "Man", "Woman", "Woman", "Man", "Woman", "Man", "Woman"],
            "Veteran": ["Yes", "No", "No", "Yes", "No", "No", "Yes", "No"],
        },
        names=["ana", "bo", "cam", "dee", "eli", "fay", "gus", "hana"],
    )

    # Four reviewers' rankings (candidate ids, best first).  Reviewers 1, 2
    # and 4 tend to put the men (ids 0, 1, 4, 6) near the top.
    panel = RankingSet.from_orders(
        [
            [0, 1, 4, 6, 2, 3, 5, 7],
            [1, 0, 6, 4, 3, 2, 7, 5],
            [2, 0, 3, 1, 5, 4, 7, 6],
            [0, 4, 1, 6, 2, 5, 3, 7],
        ],
        labels=["reviewer-1", "reviewer-2", "reviewer-3", "reviewer-4"],
    )

    delta = 0.2
    kemeny = KemenyAggregator().aggregate(panel)
    fair_kemeny = FairKemenyAggregator().aggregate(panel, applicants, delta)
    fair_borda = FairBordaAggregator().aggregate(panel, applicants, delta)

    print(f"MANI-Rank threshold delta = {delta}\n")
    for name, ranking in [
        ("Kemeny (fairness-unaware)", kemeny),
        ("Fair-Kemeny", fair_kemeny),
        ("Fair-Borda", fair_borda),
    ]:
        report = evaluate_mani_rank(ranking, applicants, delta)
        order = ", ".join(applicants.name_of(candidate) for candidate in ranking)
        print(f"{name}")
        print(f"  consensus : {order}")
        print(f"  PD loss   : {pd_loss(panel, ranking):.3f}")
        for entity, score, threshold, ok in report.entity_scores():
            status = "ok" if ok else "VIOLATED"
            print(f"  {entity:<12} parity {score:.3f}  (<= {threshold})  {status}")
        print()


if __name__ == "__main__":
    main()
