"""The paper's running example: an admissions committee ranking 45 candidates.

Figure 1 of the paper shows four committee members ranking 45 scholarship
candidates with Gender (Man / Non-binary / Woman) and Race (5 groups); one
ranking (r4) is heavily biased, one (r3) is comparatively even.  Figure 2 then
contrasts the plain Kemeny consensus (which inherits the bias) with the
MANI-Rank consensus at Δ = 0.1.

This example recreates that scenario with a synthetic committee: four base
rankings with different bias strengths are sampled, the fairness-unaware
Kemeny consensus and a Fair-Copeland consensus (Δ = 0.1) are generated, and
the ARP/IRP comparison of Figure 2 is printed.

Run with::

    python examples/admissions_committee.py
"""

from __future__ import annotations

import numpy as np

from repro import CandidateTable, RankingSet
from repro.datagen import biased_modal_ranking, proportional_candidate_table
from repro.fair import FairCopelandAggregator, UnawareKemenyBaseline
from repro.fairness import FairnessTable, parity_scores, pd_loss

#: Bias strength of each committee member's ranking (r3 is the fairest,
#: r4 the most biased, mirroring the narrative of the paper's Figure 1).
COMMITTEE_BIASES = {
    "r1": {"Gender": 2.2, "Race": 1.6},
    "r2": {"Gender": 1.8, "Race": 2.0},
    "r3": {"Gender": 0.3, "Race": 0.3},
    "r4": {"Gender": 4.5, "Race": 3.5},
}


def build_committee(seed: int = 7) -> tuple[CandidateTable, RankingSet]:
    """Build the 45-candidate table and the four committee rankings."""
    rng = np.random.default_rng(seed)
    table = proportional_candidate_table(
        45,
        {
            "Gender": ("Man", "Non-binary", "Woman"),
            "Race": ("AlaskaNat", "Asian", "Black", "NatHawaii", "White"),
        },
        rng=rng,
    )
    rankings = [
        biased_modal_ranking(table, biases, rng=rng)
        for biases in COMMITTEE_BIASES.values()
    ]
    return table, RankingSet(rankings, labels=list(COMMITTEE_BIASES))


def main() -> None:
    delta = 0.1
    table, committee = build_committee()

    kemeny = UnawareKemenyBaseline().aggregate(committee, table, delta)
    fair = FairCopelandAggregator().aggregate(committee, table, delta)

    print("Base rankings and consensus rankings (Figure 1 / Figure 2 scenario)")
    print()
    rows = list(zip(committee.labels, committee))
    rows.append(("Kemeny consensus", kemeny))
    rows.append(("MANI-Rank consensus", fair))
    print(FairnessTable.from_rankings(table, rows).to_text())
    print()

    print("Figure 2 comparison (Kemeny vs MANI-Rank consensus):")
    kemeny_parity = parity_scores(kemeny, table)
    fair_parity = parity_scores(fair, table)
    for entity in table.all_fairness_entities():
        label = "IRP" if entity == table.INTERSECTION else f"ARP {entity}"
        print(
            f"  {label:<12} Kemeny {kemeny_parity[entity]:.2f}   "
            f"MANI-Rank {fair_parity[entity]:.2f}"
        )
    print()
    print(
        f"PD loss: Kemeny {pd_loss(committee, kemeny):.3f}, "
        f"MANI-Rank {pd_loss(committee, fair):.3f} "
        "(the price paid for removing the committee's bias)"
    )


if __name__ == "__main__":
    main()
