"""CSRankings 20-year consensus (the paper's appendix, Table V).

Group fairness is not only about people: the appendix of the paper aggregates
21 yearly rankings of 65 computer-science departments and shows the consensus
inherits (and amplifies) a persistent Northeast / Private advantage.  This
example rebuilds that study on the synthetic CSRankings dataset, compares the
Kemeny consensus with Fair-Copeland at Δ = 0.05, and lists the departments
whose positions change the most when the bias is removed.

Run with::

    python examples/csrankings_consensus.py
"""

from __future__ import annotations

from repro.datagen import generate_csrankings_dataset
from repro.fair import FairCopelandAggregator, UnawareKemenyBaseline
from repro.fairness import FairnessTable, parity_scores, pd_loss


def main() -> None:
    delta = 0.05
    dataset = generate_csrankings_dataset(n_departments=65, seed=41)
    table, rankings = dataset.table, dataset.rankings

    kemeny = UnawareKemenyBaseline().aggregate(rankings, table, delta)
    fair = FairCopelandAggregator().aggregate(rankings, table, delta)

    # Show a handful of representative years plus the two consensus rankings.
    sample_years = [label for label in rankings.labels if label in {"2000", "2010", "2020"}]
    rows = [
        (label, rankings[rankings.labels.index(label)]) for label in sample_years
    ] + [("Kemeny", kemeny), ("Fair-Copeland", fair)]
    print("Per-group FPR, ARP and IRP (Table V layout, selected years):\n")
    print(FairnessTable.from_rankings(table, rows).to_text())
    print()

    print("Fairness of the 20-year consensus:")
    for name, ranking in [("Kemeny", kemeny), ("Fair-Copeland", fair)]:
        parity = parity_scores(ranking, table)
        print(
            f"  {name:<14} Location ARP {parity['Location']:.3f}   "
            f"Type ARP {parity['Type']:.3f}   IRP {parity[table.INTERSECTION]:.3f}   "
            f"PD loss {pd_loss(rankings, ranking):.3f}"
        )
    print()

    movers = sorted(
        table.candidate_ids,
        key=lambda dept: abs(kemeny.position_of(dept) - fair.position_of(dept)),
        reverse=True,
    )[:5]
    print("Departments moving the most when the consensus is de-biased:")
    for dept in movers:
        print(
            f"  {table.name_of(dept):<9} "
            f"({table.value_of(dept, 'Location')}, {table.value_of(dept, 'Type')}): "
            f"position {kemeny.position_of(dept) + 1} -> {fair.position_of(dept) + 1}"
        )


if __name__ == "__main__":
    main()
