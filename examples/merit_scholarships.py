"""Merit-scholarship case study (the paper's Table IV) on the exam dataset.

Three exam subjects (math, reading, writing) each rank 200 students; the
consensus over the three rankings decides who receives merit scholarships.
The example shows how the biases of the score-based rankings (subsidised-lunch
students and NatHawaii students ranked low) carry into the Kemeny consensus
and how the MFCR methods remove them at Δ = 0.05, then translates the
consensus into a concrete outcome: the share of the top-25% scholarship band
that each group receives.

Run with::

    python examples/merit_scholarships.py
"""

from __future__ import annotations

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.datagen import generate_exam_dataset
from repro.fair import FairBordaAggregator, FairSchulzeAggregator, UnawareKemenyBaseline
from repro.fairness import FairnessTable


def scholarship_shares(
    ranking: Ranking, table: CandidateTable, attribute: str, top_fraction: float = 0.25
) -> dict[str, float]:
    """Fraction of the top ``top_fraction`` of the ranking held by each group."""
    cutoff = max(1, int(round(top_fraction * table.n_candidates)))
    winners = set(ranking.top(cutoff).tolist())
    shares: dict[str, float] = {}
    for group in table.groups(attribute):
        in_top = sum(1 for member in group.members if member in winners)
        shares[str(group.value)] = in_top / group.size
    return shares


def main() -> None:
    delta = 0.05
    dataset = generate_exam_dataset(n_students=200, seed=2022)
    table, rankings = dataset.table, dataset.rankings

    kemeny = UnawareKemenyBaseline().aggregate(rankings, table, delta)
    fair_schulze = FairSchulzeAggregator().aggregate(rankings, table, delta)
    fair_borda = FairBordaAggregator().aggregate(rankings, table, delta)

    rows = list(zip(rankings.labels, rankings)) + [
        ("Kemeny", kemeny),
        ("Fair-Schulze", fair_schulze),
        ("Fair-Borda", fair_borda),
    ]
    print("Per-group FPR, ARP and IRP (Table IV layout):\n")
    print(FairnessTable.from_rankings(table, rows).to_text())
    print()

    print(
        "Merit aid allocated proportionally to favored-pair share (FPR), as in "
        "the paper's reading of Table IV:"
    )
    from repro.fairness import fpr_by_group

    for name, ranking in [("Kemeny", kemeny), ("Fair-Borda", fair_borda)]:
        lunch_fpr = fpr_by_group(ranking, table, "Lunch")
        ratio = lunch_fpr["Lunch=NoSub"] / max(lunch_fpr["Lunch=SubLunch"], 1e-9)
        formatted = ", ".join(f"{group}: {score:.2f}" for group, score in lunch_fpr.items())
        print(f"  {name:<12} {formatted}   (NoSub receives {ratio:.1f}x the favored pairs)")
    print()

    print("Fraction of each Lunch group inside the top-25% scholarship band:")
    for name, ranking in [("Kemeny", kemeny), ("Fair-Borda", fair_borda)]:
        shares = scholarship_shares(ranking, table, "Lunch")
        formatted = ", ".join(f"{group}: {share:.0%}" for group, share in shares.items())
        print(f"  {name:<12} {formatted}")
    print()
    print(
        "Under the fairness-unaware consensus, students needing subsidised "
        "lunch win roughly half as many favored pairs as the others; the fair "
        "consensus equalises the pairwise allocation (MANI-Rank targets "
        "whole-ranking parity, so small top-k gaps can remain) while still "
        "following the exam-based rankings wherever fairness permits."
    )


if __name__ == "__main__":
    main()
