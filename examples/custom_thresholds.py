"""Customising the MANI-Rank criteria: per-attribute thresholds and the price of fairness.

Section II-B of the paper notes that applications may require different
degrees of fairness per protected attribute (``Δ_pk``) or for the intersection
(``Δ_Inter``).  This example:

1. builds a biased hiring scenario with Gender and Disability attributes,
2. sweeps the single-Δ setting from strict to loose and reports the resulting
   Price of Fairness (the Figure 5 trade-off, in miniature),
3. applies a mixed policy — strict parity on Disability (Δ = 0.02), a looser
   requirement on Gender (Δ = 0.2) and the intersection (Δ = 0.15) — using
   :class:`repro.fairness.FairnessThresholds`.

Run with::

    python examples/custom_thresholds.py
"""

from __future__ import annotations

import numpy as np

from repro.core.ranking_set import RankingSet
from repro.datagen import biased_modal_ranking, proportional_candidate_table, sample_mallows
from repro.fair import FairCopelandAggregator
from repro.fairness import FairnessThresholds, parity_scores, pd_loss, price_of_fairness
from repro.aggregation import CopelandAggregator


def build_scenario(seed: int = 11) -> tuple[object, RankingSet]:
    """Thirty candidates, Gender x Disability, twenty biased reviewer rankings."""
    rng = np.random.default_rng(seed)
    table = proportional_candidate_table(
        30,
        {"Gender": ("Man", "Woman"), "Disability": ("None", "Disclosed")},
        proportions={"Disability": (0.8, 0.2)},
        rng=rng,
    )
    modal = biased_modal_ranking(table, {"Gender": 1.5, "Disability": 2.5}, rng=rng)
    rankings = sample_mallows(modal, theta=0.7, n_rankings=20, rng=rng)
    return table, rankings


def main() -> None:
    table, rankings = build_scenario()
    unaware = CopelandAggregator().aggregate(rankings)
    fair_copeland = FairCopelandAggregator()

    print("Fairness of the unaware Copeland consensus:")
    for entity, score in parity_scores(unaware, table).items():
        print(f"  {entity:<14} {score:.3f}")
    print()

    print("Single-threshold sweep (Price of Fairness vs delta):")
    for delta in (0.05, 0.1, 0.2, 0.3, 0.4):
        fair = fair_copeland.aggregate(rankings, table, delta)
        pof = price_of_fairness(rankings, fair, unaware)
        print(
            f"  delta={delta:<5} PD loss {pd_loss(rankings, fair):.3f}   PoF {pof:.3f}"
        )
    print()

    policy = FairnessThresholds(
        default=0.15,
        per_entity={"Disability": 0.02, "Gender": 0.20},
    )
    fair = fair_copeland.aggregate(rankings, table, policy)
    print("Mixed policy (Disability 0.02, Gender 0.20, intersection 0.15):")
    for entity, score in parity_scores(fair, table).items():
        print(
            f"  {entity:<14} parity {score:.3f}   threshold {policy.threshold_for(entity)}"
        )
    print(f"  PD loss {pd_loss(rankings, fair):.3f}")


if __name__ == "__main__":
    main()
