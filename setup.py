"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so that ``python setup.py develop`` works in offline environments whose
setuptools/pip combination cannot perform PEP 660 editable installs (no
``wheel`` package available).
"""

from setuptools import setup

setup()
