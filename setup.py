"""Setuptools shim.

This file exists so that ``python setup.py develop`` works in offline
environments whose setuptools/pip combination cannot perform PEP 660
editable installs (no ``wheel`` package available).  All metadata — the
package name, the ``mani-rank`` console script, the ``dev`` extra — lives in
the ``[project]`` table of ``pyproject.toml`` (setuptools >= 61 reads it from
here too).  ``pip install -e .`` attempts a PEP 517 isolated build, which
needs network access; offline, use ``python setup.py develop`` (or pass
``--no-build-isolation``).
"""

from setuptools import setup

setup()
