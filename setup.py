"""Setuptools shim.

This file exists so that ``python setup.py develop`` works in offline
environments whose setuptools/pip combination cannot perform PEP 660
editable installs (no ``wheel`` package available).  Note that
``pyproject.toml`` carries lint configuration only — its presence makes
``pip install -e .`` attempt a PEP 517 isolated build, which needs network
access; offline, use ``python setup.py develop`` (or pass
``--no-build-isolation``).
"""

from setuptools import setup

setup()
